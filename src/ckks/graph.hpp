/**
 * @file
 * Capture-and-replay execution plans for the CKKS hot ops -- the CUDA
 * Graphs analogue of the simulated substrate (DESIGN.md §1.7,
 * substitution #9).
 *
 * At a fixed (op kind, level, topology, limb batch) the launch
 * topology of HMult/HSquare/Rescale/KeySwitch is identical on every
 * call, yet the live dispatcher re-derives it each time: per batch it
 * walks the operand Dep lists for hazards, picks streams, and the
 * temporaries re-allocate from the MemPool. A PlanScope placed around
 * the op body makes the first call CAPTURE that work into a
 * KernelGraph -- per-batch launch records with a fixed stream
 * assignment, precomputed RAW/WAR/WAW edges, symbolic operand
 * bindings (slot id + limb offset, never a raw Limb pointer) and the
 * scratch footprint -- and every later call REPLAY it: batches are
 * enqueued straight onto their recorded streams, waiting only on the
 * precomputed edges (plus the recorded first-touch external checks
 * against whatever work is still in flight on the freshly bound
 * operands), with the pool's free lists pre-reserved so no replay
 * allocation reaches the host allocator.
 *
 * Replay re-binds operands by position: the op body runs again (it
 * must -- kernel bodies close over this call's polynomials and
 * constants), but kernels::forBatches and the base-conversion
 * dispatcher consult the Context's active session instead of deriving
 * a schedule. Capture and replay therefore submit bit-identical work
 * in an identical order; only the host-side dispatch cost differs.
 *
 * Sessions are thread-local Context state: every serving submitter
 * captures or replays independently over the shared plan cache, which
 * is mutex-guarded with SINGLE-FLIGHT capture -- the first submitter
 * to miss a key captures it while concurrent submitters for the same
 * key block until the plan is published (then replay it); distinct
 * keys capture in parallel (per-thread pool allocation traces keep
 * their footprints separate). Replays fold the recorded stream ids
 * onto the replaying thread's StreamLease, so one plan serves every
 * submitter regardless of which stream subset it leases
 * (DESIGN.md §1.8). Nested scopes are inert: an op captured inside
 * another op's scope simply contributes its kernels to the outer
 * graph. The `FIDES_NO_GRAPH` environment variable (or
 * Context::setGraphEnabled(false)) disables the whole layer; plans
 * are invalidated whenever an execution knob that shapes the schedule
 * changes (limb batch, fusion, NTT schedule, modular-reduction
 * strategy).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ckks/kernels.hpp"

namespace fideslib::ckks::kernels
{

/** Hot operations with cacheable launch topologies. */
enum class PlanOp : u32
{
    HMult,       //!< Evaluator::multiply (tensor + relin key switch)
    HSquare,     //!< Evaluator::square
    Rescale,     //!< Evaluator::rescaleInPlace (both components)
    KSDecompose, //!< decomposeAndModUp (digit split + ModUp)
    KSApply,     //!< applyRotation (inner product + ModDown + gather)

    // Composite segment plans: a whole straight-line ladder captured
    // as ONE graph. A segment scope swallows every inner op (their
    // nested PlanScopes stay inert), so a bootstrap replays a handful
    // of giant plans instead of hundreds of per-op ones. Segment keys
    // carry the pipeline's config hash in `aux` -- two Bootstrappers
    // with different slot counts or level budgets at the same level
    // must not share a plan.
    CoeffToSlotSeg, //!< Bootstrapper: the CoeffToSlot stage ladder
    EvalModSeg,     //!< Bootstrapper: conj split + ApproxMod + recombine
    SlotToCoeffSeg, //!< Bootstrapper: the SlotToCoeff stage ladder
    LinTransSeg,    //!< applyEncoded: one BSGS diag-matrix product
    ChebSeg,        //!< evalChebyshevSeries: the whole PS evaluation
};

/** True for the composite-segment plan kinds (gated by
 *  Context::segmentPlansEnabled / FIDES_NO_SEGMENT_PLANS). */
inline bool
isSegmentOp(PlanOp op)
{
    return op >= PlanOp::CoeffToSlotSeg;
}

/**
 * FNV-1a accumulator for segment aux tags: segment plans are keyed on
 * everything their call SEQUENCE depends on beyond (op, level) --
 * slot counts, level budgets, BSGS structure, Chebyshev coefficient
 * zero patterns -- folded into PlanKey::aux. Values that only change
 * kernel BODIES (plaintext contents, scalar constants) must stay out:
 * bodies are rebuilt live on every replay.
 */
constexpr u32 kPlanAuxSeed = 2166136261u;
inline u32
planAuxMix(u32 h, u64 v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= static_cast<u32>(v & 0xffu);
        h *= 16777619u;
        v >>= 8;
    }
    return h;
}

/**
 * Plan identity: everything the schedule shape depends on besides the
 * Context itself (topology and dnum are fixed per context; the
 * mutable execution knobs invalidate the cache instead of widening
 * the key).
 */
struct PlanKey
{
    PlanOp op;
    u32 limbs;   //!< q-limb count (level + 1) of the operand
    u32 digits;  //!< key-switch digits active at that level
    u32 aux = 0; //!< operand-aliasing tag (HMult: a and b are the
                 //!< same object). Aliased operands share slots, so
                 //!< an aliased capture does not describe a
                 //!< distinct-operand call -- it gets its own plan.

    bool
    operator<(const PlanKey &o) const
    {
        if (op != o.op)
            return op < o.op;
        if (limbs != o.limbs)
            return limbs < o.limbs;
        if (digits != o.digits)
            return digits < o.digits;
        return aux < o.aux;
    }
};

/** Per-key observability record (Context::planStats). */
struct PlanKeyStats
{
    PlanKey key;
    u64 hits = 0;   //!< replays served from the cached plan
    u64 misses = 0; //!< capture attempts (first call + re-captures)
};

/** Cache-wide observability snapshot (Context::planStats). */
struct PlanCacheStats
{
    std::vector<PlanKeyStats> keys;
    u64 hits = 0;          //!< summed over keys
    u64 misses = 0;        //!< summed over keys
    u64 reservedBytes = 0; //!< pinned arena footprint, all pools

    // Segmentation: the same totals split composite-segment vs per-op
    // (isSegmentOp on each key), so benches can report how much of the
    // replay traffic the segment layer absorbs without re-deriving it
    // from the key list.
    std::size_t segmentKeys = 0; //!< stored keys with a segment op
    u64 segmentHits = 0;
    u64 segmentMisses = 0;
};

/**
 * Per-Context store of captured plans. Thread-safe with single-flight
 * capture: acquire() hands the first caller of a missing key the
 * Capture role and blocks concurrent callers of the SAME key until
 * the capture is published (they then replay) or abandoned (one of
 * them becomes the next capturer); distinct keys proceed in parallel.
 */
class PlanCache
{
  public:
    enum class Role { Replay, Capture };
    struct Lease
    {
        Role role;
        const KernelGraph *graph; //!< non-null iff role == Replay
    };

    /**
     * Resolves @p key to a role, blocking while another thread holds
     * the same key's capture. Every acquire must be matched by
     * exactly one release() (Replay role) or publish()/abandon()
     * (Capture role).
     *
     * The replay steady state -- every serving submitter resolving
     * the same warm keys per request -- takes only a SHARED lock (a
     * lookup plus an atomic hit count), so same-key replays from N
     * submitters never serialize on the cache; the exclusive lock is
     * reserved for the mutating paths (first-miss insertion, publish,
     * abandon, clear).
     */
    Lease acquire(const PlanKey &key);
    /** Stores a freshly captured plan and wakes same-key waiters. */
    void publish(const PlanKey &key, std::unique_ptr<KernelGraph> graph);
    /** Gives up a capture (invalidated or unwound); same-key waiters
     *  re-race, one of them capturing next. */
    void abandon(const PlanKey &key);
    /** Ends a Replay lease (the graph pointer must not outlive it). */
    void release();

    /** Drops every stored plan. Must not be called while any lease is
     *  outstanding -- a plan must never die under a replay. */
    void clear();
    std::size_t size() const;
    PlanCacheStats stats() const;

    /**
     * Tops up the device pools' arena reservations so every ALREADY
     * stored plan has @p multiplier x its scratch footprint pinned
     * (reserve() takes per-class maxima, so this only grows pins).
     * Called when a Server raises the arena multiplier after plans
     * were captured at a smaller one (warmup, sequential runs).
     */
    void reserveScratch(DeviceSet &devs, u32 multiplier) const;

  private:
    struct Entry
    {
        std::unique_ptr<KernelGraph> graph;
        bool capturing = false;
        //! Atomic so shared-lock replay lookups can count hits
        //! without upgrading to the exclusive lock.
        std::atomic<u64> hits{0};
        std::atomic<u64> misses{0};
    };

    mutable std::shared_mutex m_;
    std::condition_variable_any published_;
    std::map<PlanKey, Entry> plans_;
    std::atomic<u32> activeLeases_{0};
};

/**
 * Records the launch topology of one op while it executes live.
 * forBatches (and the base-conversion dispatcher) feed it one call /
 * node at a time; edges and external checks are derived structurally
 * from the Dep lists -- never from observed event readiness, which is
 * timing-dependent -- so a replay enforces exactly the orderings live
 * execution would.
 */
class GraphCapture
{
  public:
    explicit GraphCapture(const Context &ctx);

    // forBatches hooks. -----------------------------------------------
    /** Starts a logical-kernel call and maps its deps to slots. */
    void beginCall(std::size_t numLimbs, const std::vector<Dep> &deps);
    /** Records one batch launch of the current call. @p ev is the
     *  batch's completion event (null in inline execution). */
    void recordNode(u32 streamId, std::size_t lo, std::size_t hi,
                    u64 bytesRead, u64 bytesWritten, u64 intOps,
                    const std::vector<Dep> &deps,
                    const std::vector<Event> &extraWaits,
                    const Event &ev);

    // Base-conversion hooks (per-device custom launches). -------------
    /** @p dstPoly may be null: targets in host scratch are untracked
     *  (consumers chain through the returned events -> edges). */
    void beginCustomCall(const RNSPoly *srcPoly, const RNSPoly *dstPoly);
    /** One per-device Conv launch reading @p srcPos of the source and
     *  writing @p dstPos of the destination (empty for scratch). */
    void recordCustomNode(u32 streamId, u64 bytesRead, u64 bytesWritten,
                          u64 intOps, const std::vector<u32> &srcPos,
                          const std::vector<u32> &dstPos,
                          const Event &ev);

    /** Marks the capture unusable (an event the plan cannot represent
     *  symbolically was seen); finish() will return null and the op
     *  simply stays uncached. */
    void invalidate() { valid_ = false; }

    /** Finalizes: computes the exit notes and the per-device scratch
     *  histograms. Returns null if the capture was invalidated. */
    std::unique_ptr<KernelGraph> finish();

  private:
    /** Per-(slot, limb) tracking state, mirroring Limb::noteWrite /
     *  noteRead with node ids instead of events. */
    struct LimbState
    {
        u32 writer = GraphNode::kNone;
        //! (streamId, node): latest in-flight reader per stream.
        std::vector<std::pair<u32, u32>> readers;
    };
    struct Slot
    {
        //! Pins the partition so pointer identity cannot be recycled
        //! by a mid-capture free + re-allocation.
        std::shared_ptr<const LimbPartition> pin;
        std::vector<LimbState> limbs;
    };

    u32 slotOf(const RNSPoly &poly);
    LimbState &state(u32 slot, std::size_t limb);
    /** Hazard pass: edges vs the pre-node state, plus first-touch
     *  external checks. */
    void hazards(GraphNode &node, u32 slot, std::size_t lo,
                 std::size_t hi, bool write);
    /** Commit pass: updates the tracking state with this node. */
    void commit(u32 nodeIdx, u32 streamId, u32 slot, std::size_t lo,
                std::size_t hi, bool write);
    void addEdge(GraphNode &node, u32 from);
    void finishNode(GraphNode &&node, const Event &ev);

    const Context *ctx_;
    std::unique_ptr<KernelGraph> graph_;
    std::vector<Slot> slots_;
    //! Partition identity -> slot index. Composite segments bind
    //! hundreds of operands; the linear scan this replaces made
    //! every beginCall O(slots).
    std::unordered_map<const LimbPartition *, u32> slotIndex_;
    //! Event identity -> producer node, for extraWaits resolution
    //! (same O(nodes)-scan concern at segment scale).
    std::unordered_map<const void *, u32> eventNodes_;
    bool valid_ = true;
};

/**
 * Walks a captured plan: for each node, the recorded stream gets the
 * precomputed edge waits (plus live checks on the first-touch limbs
 * of the freshly bound operands), the launch is accounted without the
 * per-kernel dispatch overhead, and the body -- rebuilt by the live op
 * code against this call's polynomials -- is submitted. finish()
 * notes the exit events back onto the bound polynomials so downstream
 * un-graphed work chains correctly.
 */
class GraphReplay
{
  public:
    GraphReplay(const Context &ctx, const KernelGraph &graph);

    /** forBatches hook: replays every recorded batch of the next
     *  call. @p recorded mirrors the live out-parameter. */
    void replayCall(std::size_t numLimbs, u64 bytesReadPerLimb,
                    u64 bytesWrittenPerLimb, u64 intOpsPerLimb,
                    const std::function<void(std::size_t, std::size_t)> &fn,
                    const std::vector<Dep> &deps,
                    std::vector<Event> *recorded);

    // Base-conversion hooks. ------------------------------------------
    void beginCustomCall(const RNSPoly *srcPoly, const RNSPoly *dstPoly);
    /** Accounts the next custom node and enqueues its waits. Returns
     *  the recorded stream, or null when execution is inline (single
     *  stream): the caller then runs the body itself. */
    Stream *customNode(u64 bytesRead, u64 bytesWritten, u64 intOps);
    /** The completion event of the custom node just issued. */
    void noteCustomEvent(const Event &ev);

    /** Applies the exit notes and asserts the whole plan was
     *  consumed (a partial replay is a library bug). */
    void finish();

  private:
    void bindSlot(u32 slot, const RNSPoly &poly);
    void enqueueWaits(Stream &st, const GraphNode &node);
    const GraphCall &nextCall(bool custom);

    const Context *ctx_;
    const KernelGraph *graph_;
    std::vector<std::shared_ptr<LimbPartition>> bound_;
    std::vector<Event> nodeEvents_;
    std::size_t callCursor_ = 0;
    std::size_t nodeCursor_ = 0;
};

/**
 * RAII plan-cache routing for one hot op: the constructor either
 * activates a replay session (cache hit -- pays the single
 * whole-graph launch overhead), activates a capture session (miss;
 * may block until a concurrent same-key capture resolves), or does
 * nothing (graphs disabled, or a session is already active on this
 * thread: nested ops contribute to the enclosing graph). The
 * destructor closes the session, storing a freshly captured plan and
 * reserving its scratch footprint -- scaled by the context's
 * plan-arena multiplier so N concurrent replays are all served from
 * pool hits -- in the device pools.
 *
 * Composite segment scopes (isSegmentOp kinds) additionally require
 * Context::segmentPlansEnabled(): with segments disabled
 * (FIDES_NO_SEGMENT_PLANS) a segment scope is inert and the inner
 * per-op scopes engage exactly as before -- the bit-identical
 * fallback path. With segments enabled the outermost segment scope
 * captures every inner op into one graph; the inner per-op scopes
 * see an active session and stay inert, so one bootstrap replays a
 * handful of composite plans instead of hundreds of per-op ones.
 */
class PlanScope
{
  public:
    /** @p aux distinguishes shapes the (op, level) pair cannot --
     *  currently only operand aliasing (PlanKey::aux). */
    PlanScope(const Context &ctx, PlanOp op, u32 level, u32 aux = 0);
    ~PlanScope();

    PlanScope(const PlanScope &) = delete;
    PlanScope &operator=(const PlanScope &) = delete;

    bool capturing() const { return capture_ != nullptr; }
    bool replaying() const { return replay_ != nullptr; }

  private:
    const Context *ctx_ = nullptr;
    PlanKey key_{};
    std::unique_ptr<GraphCapture> capture_;
    std::unique_ptr<GraphReplay> replay_;
};

} // namespace fideslib::ckks::kernels
