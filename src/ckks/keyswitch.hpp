/**
 * @file
 * Hybrid key switching (paper Sections II-A, III-F3).
 *
 * The expensive half -- digit decomposition plus ModUp into the
 * extended basis Q_l * P -- is exposed separately from the inner
 * product so that HoistedRotate can share one decomposition across
 * many rotations (Section III-F6): the Galois automorphism commutes
 * with the RNS decomposition, so raised digits can be permuted
 * per-rotation with a cheap gather instead of repeating iNTT +
 * base conversion + NTT.
 */

#pragma once

#include <utility>

#include "ckks/keys.hpp"

namespace fideslib::ckks
{

/** The ModUp-raised digits of a polynomial (all in eval form). */
struct RaisedDigits
{
    std::vector<RNSPoly> digits;
    u32 level;
};

/** Digit-decomposes and base-extends an eval-form polynomial. */
RaisedDigits decomposeAndModUp(const RNSPoly &dEval);

/**
 * Key-switch inner product: accumulates sum_j perm(digit_j) * ksk_j
 * over the extended basis and ModDowns the two accumulators.
 * @p perm, if non-null, is the automorphism gather applied on the fly
 * to each digit (the hoisted-rotation path).
 * Returns (u0, u1) at the digits' level with no special limbs.
 */
std::pair<RNSPoly, RNSPoly>
keySwitchAccumulate(const RaisedDigits &raised, const EvalKey &key,
                    const std::vector<u32> *perm = nullptr);

/** Full key switch of one polynomial component: convenience around
 *  decomposeAndModUp + keySwitchAccumulate. */
std::pair<RNSPoly, RNSPoly>
keySwitch(const RNSPoly &dEval, const EvalKey &key);

} // namespace fideslib::ckks
