#include "ckks/encoder.hpp"

#include <cmath>
#include <numbers>

#include "ckks/kernels.hpp"
#include "core/logging.hpp"

namespace fideslib::ckks
{

namespace
{

/** W_M^k = e^(2 pi i k / M) table of size M. */
std::vector<Cplx>
rootTable(std::size_t M)
{
    std::vector<Cplx> w(M);
    const long double step = 2.0L * std::numbers::pi_v<long double>
                           / static_cast<long double>(M);
    for (std::size_t k = 0; k < M; ++k)
        w[k] = Cplx(std::cos(step * k), std::sin(step * k));
    return w;
}

/** rot5[j] = 5^j mod M. */
std::vector<u64>
rotGroup(std::size_t n, std::size_t M)
{
    std::vector<u64> r(n);
    u64 g = 1;
    for (std::size_t j = 0; j < n; ++j) {
        r[j] = g;
        g = (g * 5) % M;
    }
    return r;
}

void
bitReversePermute(std::vector<Cplx> &v)
{
    const std::size_t n = v.size();
    const u32 logN = log2Floor(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = bitReverse(i, logN);
        if (i < j)
            std::swap(v[i], v[j]);
    }
}

/** Rounds a long double to a signed 128-bit integer. */
i128
roundToI128(long double v)
{
    long double r = std::floor(v + 0.5L);
    bool neg = r < 0;
    if (neg)
        r = -r;
    // Split into two 64-bit halves to avoid overflow in the cast.
    long double hiPart = std::floor(r / 18446744073709551616.0L);
    long double loPart = r - hiPart * 18446744073709551616.0L;
    i128 result = (static_cast<i128>(static_cast<u64>(hiPart)) << 64)
                + static_cast<i128>(static_cast<u64>(loPart));
    return neg ? -result : result;
}

/** Reduces a signed 128-bit integer into [0, p). */
u64
reduceI128(i128 v, const Modulus &m)
{
    i128 p = static_cast<i128>(m.value);
    i128 r = v % p;
    if (r < 0)
        r += p;
    return static_cast<u64>(r);
}

} // namespace

void
specialFFT(std::vector<Cplx> &v)
{
    const std::size_t n = v.size();
    FIDES_ASSERT(isPowerOfTwo(n));
    const std::size_t M = 4 * n;
    static thread_local std::size_t cachedM = 0;
    static thread_local std::vector<Cplx> w;
    static thread_local std::vector<u64> rot;
    if (cachedM != M) {
        w = rootTable(M);
        rot = rotGroup(n, M);
        cachedM = M;
    }

    bitReversePermute(v);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t lenH = len >> 1;
        const std::size_t lenQ = 4 * len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t j = 0; j < lenH; ++j) {
                std::size_t idx = (rot[j] % lenQ) * (M / lenQ);
                Cplx u = v[i + j];
                Cplx t = v[i + j + lenH] * w[idx];
                v[i + j] = u + t;
                v[i + j + lenH] = u - t;
            }
        }
    }
}

void
specialIFFT(std::vector<Cplx> &v)
{
    const std::size_t n = v.size();
    FIDES_ASSERT(isPowerOfTwo(n));
    const std::size_t M = 4 * n;
    static thread_local std::size_t cachedM = 0;
    static thread_local std::vector<Cplx> w;
    static thread_local std::vector<u64> rot;
    if (cachedM != M) {
        w = rootTable(M);
        rot = rotGroup(n, M);
        cachedM = M;
    }

    for (std::size_t len = n; len >= 2; len >>= 1) {
        const std::size_t lenH = len >> 1;
        const std::size_t lenQ = 4 * len;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t j = 0; j < lenH; ++j) {
                std::size_t idx = (rot[j] % lenQ) * (M / lenQ);
                Cplx x = v[i + j];
                Cplx y = v[i + j + lenH];
                v[i + j] = x + y;
                v[i + j + lenH] = (x - y) * std::conj(w[idx]);
            }
        }
    }
    const long double invN = 1.0L / static_cast<long double>(n);
    for (auto &c : v)
        c *= invN;
    bitReversePermute(v);
}

void
Encoder::encodeToPoly(const std::vector<Cplx> &values, u32 slots,
                      long double scale, RNSPoly &out) const
{
    const std::size_t n = ctx_->degree();
    FIDES_ASSERT(isPowerOfTwo(slots) && slots <= n / 2);
    FIDES_ASSERT(values.size() <= slots);
    const std::size_t gap = (n / 2) / slots;

    std::vector<Cplx> u(slots, Cplx(0, 0));
    std::copy(values.begin(), values.end(), u.begin());
    specialIFFT(u);

    // Round packed coefficients once, then reduce into every limb.
    std::vector<i128> coeffLo(slots), coeffHi(slots);
    for (std::size_t k = 0; k < slots; ++k) {
        coeffLo[k] = roundToI128(u[k].real() * scale);
        coeffHi[k] = roundToI128(u[k].imag() * scale);
    }

    out.setZero(); // host write below: setZero joins if pending
    out.setFormat(Format::Coeff);
    for (std::size_t i = 0; i < out.numLimbs(); ++i) {
        const Modulus &m = ctx_->prime(out.primeIdxAt(i)).mod;
        u64 *x = out.limb(i).data();
        for (std::size_t k = 0; k < slots; ++k) {
            x[k * gap] = reduceI128(coeffLo[k], m);
            x[n / 2 + k * gap] = reduceI128(coeffHi[k], m);
        }
    }
}

Plaintext
Encoder::encode(const std::vector<std::complex<double>> &values,
                u32 slots, u32 level, long double scale) const
{
    if (scale == 0)
        scale = ctx_->defaultScale();
    std::vector<Cplx> z(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        z[i] = Cplx(values[i].real(), values[i].imag());

    Plaintext pt{RNSPoly(*ctx_, level, Format::Coeff), scale, slots};
    encodeToPoly(z, slots, scale, pt.poly);
    kernels::toEval(pt.poly);
    return pt;
}

Plaintext
Encoder::encodeReal(const std::vector<double> &values, u32 slots,
                    u32 level, long double scale) const
{
    std::vector<std::complex<double>> z(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        z[i] = {values[i], 0.0};
    return encode(z, slots, level, scale);
}

std::vector<std::complex<double>>
Encoder::decode(const Plaintext &pt) const
{
    const std::size_t n = ctx_->degree();
    const u32 slots = pt.slots;
    const std::size_t gap = (n / 2) / slots;
    const u32 level = pt.level();

    RNSPoly poly = pt.poly.clone();
    if (poly.format() == Format::Eval)
        kernels::toCoeff(poly);
    // Genuine host read: the CRT reconstruction below walks limb data
    // on the calling thread.
    poly.syncHost();

    const CrtReconstructor &crt = ctx_->reconstructor(level);
    std::vector<u64> residues(level + 1);
    auto coefficient = [&](std::size_t pos) -> long double {
        for (u32 i = 0; i <= level; ++i)
            residues[i] = poly.limb(i).data()[pos];
        return crt.reconstruct(residues);
    };

    std::vector<Cplx> u(slots);
    for (std::size_t k = 0; k < slots; ++k) {
        u[k] = Cplx(coefficient(k * gap) / pt.scale,
                    coefficient(n / 2 + k * gap) / pt.scale);
    }
    specialFFT(u);

    std::vector<std::complex<double>> z(slots);
    for (std::size_t k = 0; k < slots; ++k) {
        z[k] = {static_cast<double>(u[k].real()),
                static_cast<double>(u[k].imag())};
    }
    return z;
}

std::vector<u64>
Encoder::scalarResidues(long double value, long double scale, u32 level,
                        u32 numSpecial) const
{
    i128 v = roundToI128(value * scale);
    std::vector<u64> out;
    out.reserve(level + 1 + numSpecial);
    for (u32 i = 0; i <= level; ++i)
        out.push_back(reduceI128(v, ctx_->qMod(i)));
    for (u32 k = 0; k < numSpecial; ++k)
        out.push_back(reduceI128(v, ctx_->pMod(k)));
    return out;
}

} // namespace fideslib::ckks
