#include "ckks/evaluator.hpp"

#include <cmath>

#include "ckks/basechange.hpp"
#include "ckks/graph.hpp"
#include "ckks/kernels.hpp"
#include "core/logging.hpp"

namespace fideslib::ckks
{

void
checkScalesMatch(long double a, long double b)
{
    long double rel = std::fabs(a - b) / std::max(a, b);
    if (rel > 1e-9L)
        fatal("scale mismatch: %.6Le vs %.6Le (rescale/adjust first)",
              a, b);
}

namespace
{

void
checkAligned(const Ciphertext &a, const Ciphertext &b)
{
    if (a.level() != b.level())
        fatal("level mismatch: %u vs %u (levelReduce first)",
              a.level(), b.level());
    checkScalesMatch(a.scale, b.scale);
}

double
addNoise(double a, double b)
{
    // log-domain addition of noise magnitudes.
    double hi = std::max(a, b), lo = std::min(a, b);
    return hi + std::log2(1.0 + std::exp2(lo - hi));
}

} // namespace

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext r = a.clone();
    addInPlace(r, b);
    return r;
}

void
Evaluator::addInPlace(Ciphertext &a, const Ciphertext &b) const
{
    checkAligned(a, b);
    kernels::addInto(a.c0, b.c0);
    kernels::addInto(a.c1, b.c1);
    a.noiseBits = addNoise(a.noiseBits, b.noiseBits);
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext r = a.clone();
    subInPlace(r, b);
    return r;
}

void
Evaluator::subInPlace(Ciphertext &a, const Ciphertext &b) const
{
    checkAligned(a, b);
    kernels::subInto(a.c0, b.c0);
    kernels::subInto(a.c1, b.c1);
    a.noiseBits = addNoise(a.noiseBits, b.noiseBits);
}

void
Evaluator::addPlainInPlace(Ciphertext &a, const Plaintext &p) const
{
    if (a.level() != p.level())
        fatal("PtAdd level mismatch: %u vs %u", a.level(), p.level());
    checkScalesMatch(a.scale, p.scale);
    kernels::addInto(a.c0, p.poly);
}

void
Evaluator::addScalarInPlace(Ciphertext &a, double c) const
{
    // The constant-slot polynomial is constant in eval form, so the
    // optimized kernel broadcasts round(c * scale) per limb.
    auto residues = encoder_.scalarResidues(c, a.scale, a.level());
    kernels::scalarAddInto(a.c0, residues);
}

void
Evaluator::negateInPlace(Ciphertext &a) const
{
    kernels::negate(a.c0);
    kernels::negate(a.c1);
}

Ciphertext
Evaluator::multiply(const Ciphertext &a, const Ciphertext &b) const
{
    if (a.level() != b.level())
        fatal("HMult level mismatch: %u vs %u", a.level(), b.level());
    const Context &ctx = *ctx_;
    const u32 level = a.level();

    // The whole op -- tensor, relinearization key switch, final
    // accumulate -- is one execution plan: first call at this level
    // captures, later calls replay (graph.hpp). multiply(x, x)
    // aliases the operand slots, so it keys a separate plan.
    kernels::PlanScope plan(ctx, kernels::PlanOp::HMult, level,
                            &a == &b ? 1u : 0u);

    // Tensor: d0 = a0 b0, d1 = a0 b1 + a1 b0, d2 = a1 b1 -- one fused
    // launch per limb batch: the four products share one read of the
    // operand limbs (Section III-F5).
    RNSPoly d0(ctx, level, Format::Eval);
    RNSPoly d1(ctx, level, Format::Eval);
    RNSPoly d2(ctx, level, Format::Eval);
    kernels::FusedChain(ctx)
        .mul(d0, a.c0, b.c0)
        .mul(d1, a.c0, b.c1)
        .mulAdd(d1, a.c1, b.c0)
        .mul(d2, a.c1, b.c1)
        .run();

    // Relinearize d2 (under s^2) back to the canonical key; the two
    // accumulates fuse into one launch.
    auto [u0, u1] = keySwitch(d2, keys_->relin);
    kernels::FusedChain(ctx).add(d0, u0).add(d1, u1).run();

    double noise = a.noiseBits + b.noiseBits + 1.0;
    return Ciphertext{std::move(d0), std::move(d1),
                      a.scale * b.scale, std::max(a.slots, b.slots),
                      noise};
}

Ciphertext
Evaluator::square(const Ciphertext &a) const
{
    const Context &ctx = *ctx_;
    const u32 level = a.level();
    kernels::PlanScope plan(ctx, kernels::PlanOp::HSquare, level);

    // HSquare saves one of the four tensor multiplications; the
    // remaining products fuse into one launch per limb batch.
    RNSPoly d0(ctx, level, Format::Eval);
    RNSPoly d1(ctx, level, Format::Eval);
    RNSPoly d2(ctx, level, Format::Eval);
    kernels::FusedChain(ctx)
        .mul(d0, a.c0, a.c0)
        .mul(d1, a.c0, a.c1)
        .add(d1, d1) // d1 = 2 a0 a1
        .mul(d2, a.c1, a.c1)
        .run();

    auto [u0, u1] = keySwitch(d2, keys_->relin);
    kernels::FusedChain(ctx).add(d0, u0).add(d1, u1).run();

    return Ciphertext{std::move(d0), std::move(d1), a.scale * a.scale,
                      a.slots, 2 * a.noiseBits + 1.0};
}

void
Evaluator::multiplyPlainInPlace(Ciphertext &a, const Plaintext &p) const
{
    if (a.level() != p.level())
        fatal("PtMult level mismatch: %u vs %u", a.level(), p.level());
    kernels::mulInto(a.c0, p.poly);
    kernels::mulInto(a.c1, p.poly);
    a.scale *= p.scale;
    a.noiseBits += std::log2(static_cast<double>(p.scale));
}

void
Evaluator::multiplyScalarInPlace(Ciphertext &a, double c) const
{
    multiplyScalarInPlace(a, static_cast<long double>(c),
                          ctx_->defaultScale());
}

void
Evaluator::multiplyScalarInPlace(Ciphertext &a, long double c,
                                 long double scale) const
{
    auto residues = encoder_.scalarResidues(c, scale, a.level());
    kernels::scalarMulInto(a.c0, residues);
    kernels::scalarMulInto(a.c1, residues);
    a.scale *= scale;
}

void
Evaluator::multiplyByMonomialInPlace(Ciphertext &a, u64 k) const
{
    kernels::toCoeff(a.c0);
    kernels::toCoeff(a.c1);
    kernels::mulByMonomial(a.c0, k);
    kernels::mulByMonomial(a.c1, k);
    kernels::toEval(a.c0);
    kernels::toEval(a.c1);
}

void
Evaluator::rescaleInPlace(Ciphertext &a) const
{
    const u64 ql = ctx_->qMod(a.level()).value;
    kernels::PlanScope plan(*ctx_, kernels::PlanOp::Rescale,
                            a.level());
    rescale(a.c0);
    rescale(a.c1);
    a.scale /= static_cast<long double>(ql);
    a.noiseBits = std::max(0.0, a.noiseBits
                                    - std::log2(static_cast<double>(ql)))
                + 1.0;
}

void
Evaluator::levelReduceInPlace(Ciphertext &a, u32 newLevel) const
{
    FIDES_ASSERT(newLevel <= a.level());
    while (a.level() > newLevel) {
        a.c0.dropLimb();
        a.c1.dropLimb();
    }
}

const EvalKey &
Evaluator::galoisKey(u64 galois) const
{
    auto it = keys_->galois.find(galois);
    if (it == keys_->galois.end())
        fatal("missing Galois key for element %llu "
              "(generate the rotation key first)",
              (unsigned long long)galois);
    return it->second;
}

Ciphertext
Evaluator::applyRotation(const Ciphertext &a, const RaisedDigits &raised,
                         u64 galois) const
{
    const Context &ctx = *ctx_;
    // One plan per level serves EVERY rotation step and the
    // conjugation: the launch topology is galois-independent (only
    // the permutation baked into the replayed bodies differs).
    kernels::PlanScope plan(ctx, kernels::PlanOp::KSApply, a.level());
    const auto &perm = ctx.automorphPerm(galois);
    auto [u0, u1] = keySwitchAccumulate(raised, galoisKey(galois),
                                        &perm);

    // Gather + accumulate in one launch (the automorphism is a pure
    // permutation, so it rides along with the add for free).
    RNSPoly c0(ctx, a.level(), Format::Eval);
    kernels::FusedChain(ctx)
        .gather(c0, a.c0, perm)
        .add(c0, u0)
        .run();
    return Ciphertext{std::move(c0), std::move(u1), a.scale, a.slots,
                      a.noiseBits + 0.5};
}

Ciphertext
Evaluator::rotate(const Ciphertext &a, i64 k) const
{
    const u64 g = ctx_->rotationGaloisElt(k);
    if (g == 1)
        return a.clone();
    auto raised = decomposeAndModUp(a.c1);
    return applyRotation(a, raised, g);
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a) const
{
    auto raised = decomposeAndModUp(a.c1);
    return applyRotation(a, raised, ctx_->conjugateGaloisElt());
}

std::vector<Ciphertext>
Evaluator::hoistedRotate(const Ciphertext &a,
                         const std::vector<i64> &ks) const
{
    // One decomposition + ModUp shared by every rotation.
    auto raised = decomposeAndModUp(a.c1);
    std::vector<Ciphertext> out;
    out.reserve(ks.size());
    for (i64 k : ks) {
        const u64 g = ctx_->rotationGaloisElt(k);
        if (g == 1) {
            out.push_back(a.clone());
        } else {
            out.push_back(applyRotation(a, raised, g));
        }
    }
    return out;
}

bool
Evaluator::isCanonical(const Ciphertext &a) const
{
    long double want = ctx_->levelScale(a.level());
    return std::fabs(a.scale - want) / want < 1e-9L;
}

void
Evaluator::toCanonicalLevel(Ciphertext &a, u32 targetLevel) const
{
    FIDES_ASSERT(targetLevel <= a.level());
    FIDES_ASSERT(isCanonical(a));
    while (a.level() > targetLevel) {
        // Multiply by 1 at scale Delta_l, then rescale by q_l:
        // Delta_l * Delta_l / q_l = Delta_{l-1}, staying canonical.
        multiplyScalarInPlace(a, 1.0L, ctx_->levelScale(a.level()));
        rescaleInPlace(a);
    }
}

Ciphertext
Evaluator::multiplyC(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext x = a.clone();
    Ciphertext y = b.clone();
    u32 l = std::min(x.level(), y.level());
    toCanonicalLevel(x, l);
    toCanonicalLevel(y, l);
    Ciphertext r = multiply(x, y);
    rescaleInPlace(r);
    return r;
}

Ciphertext
Evaluator::squareC(const Ciphertext &a) const
{
    FIDES_ASSERT(isCanonical(a));
    Ciphertext r = square(a);
    rescaleInPlace(r);
    return r;
}

Ciphertext
Evaluator::addC(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext x = a.clone();
    Ciphertext y = b.clone();
    u32 l = std::min(x.level(), y.level());
    toCanonicalLevel(x, l);
    toCanonicalLevel(y, l);
    addInPlace(x, y);
    return x;
}

Ciphertext
Evaluator::subC(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext x = a.clone();
    Ciphertext y = b.clone();
    u32 l = std::min(x.level(), y.level());
    toCanonicalLevel(x, l);
    toCanonicalLevel(y, l);
    subInPlace(x, y);
    return x;
}

Ciphertext
Evaluator::multiplyPlainC(const Ciphertext &a,
                          const std::vector<Cplx> &values) const
{
    FIDES_ASSERT(isCanonical(a));
    std::vector<std::complex<double>> z(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        z[i] = {static_cast<double>(values[i].real()),
                static_cast<double>(values[i].imag())};
    }
    Plaintext pt = encoder_.encode(z, a.slots, a.level(),
                                   ctx_->levelScale(a.level()));
    Ciphertext r = a.clone();
    multiplyPlainInPlace(r, pt);
    rescaleInPlace(r);
    return r;
}

Ciphertext
Evaluator::dotPlain(const std::vector<const Ciphertext *> &cts,
                    const std::vector<const Plaintext *> &pts) const
{
    FIDES_ASSERT(!cts.empty() && cts.size() == pts.size());
    const Context &ctx = *ctx_;
    const u32 level = cts[0]->level();
    const long double scale = cts[0]->scale * pts[0]->scale;

    RNSPoly acc0(ctx, level, Format::Eval);
    RNSPoly acc1(ctx, level, Format::Eval);
    double noise = 0;
    if (ctx.fusionEnabled()) {
        kernels::mul(acc0, cts[0]->c0, pts[0]->poly);
        kernels::mul(acc1, cts[0]->c1, pts[0]->poly);
        for (std::size_t i = 1; i < cts.size(); ++i) {
            checkScalesMatch(cts[i]->scale * pts[i]->scale, scale);
            kernels::mulAddInto(acc0, cts[i]->c0, pts[i]->poly);
            kernels::mulAddInto(acc1, cts[i]->c1, pts[i]->poly);
        }
        for (const auto *ct : cts)
            noise = addNoise(noise, ct->noiseBits);
    } else {
        // Unfused fallback: separate product + accumulate round trips.
        acc0.setZero();
        acc1.setZero();
        for (std::size_t i = 0; i < cts.size(); ++i) {
            checkScalesMatch(cts[i]->scale * pts[i]->scale, scale);
            RNSPoly t0(ctx, level, Format::Eval);
            RNSPoly t1(ctx, level, Format::Eval);
            kernels::mul(t0, cts[i]->c0, pts[i]->poly);
            kernels::mul(t1, cts[i]->c1, pts[i]->poly);
            kernels::addInto(acc0, t0);
            kernels::addInto(acc1, t1);
            noise = addNoise(noise, cts[i]->noiseBits);
        }
    }
    noise += std::log2(static_cast<double>(pts[0]->scale));
    return Ciphertext{std::move(acc0), std::move(acc1), scale,
                      cts[0]->slots, noise};
}

} // namespace fideslib::ckks
