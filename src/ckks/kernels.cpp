#include "ckks/kernels.hpp"

#include "core/logging.hpp"

namespace fideslib::ckks::kernels
{

namespace
{

constexpr u64 kWord = sizeof(u64);

/** Pointwise modular multiply with the configured reduction. */
inline void
mulSpan(const Context &ctx, u64 *dst, const u64 *a, const u64 *b,
        std::size_t n, const Modulus &m)
{
    if (ctx.modMulKind() == ModMulKind::Barrett) {
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = mulModBarrett(a[j], b[j], m);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = mulModNaive(a[j], b[j], m.value);
    }
}

inline void
mulAddSpan(const Context &ctx, u64 *acc, const u64 *a, const u64 *b,
           std::size_t n, const Modulus &m)
{
    if (ctx.modMulKind() == ModMulKind::Barrett) {
        for (std::size_t j = 0; j < n; ++j)
            acc[j] = addMod(acc[j], mulModBarrett(a[j], b[j], m),
                            m.value);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            acc[j] = addMod(acc[j], mulModNaive(a[j], b[j], m.value),
                            m.value);
    }
}

/** The limb range of @p d that batch [lo, hi) touches. */
inline std::pair<std::size_t, std::size_t>
depRange(const Dep &d, std::size_t lo, std::size_t hi)
{
    if (d.whole)
        return {0, d.poly->numLimbs()};
    if (d.fixed)
        return {d.offset, d.offset + 1};
    return {d.offset + lo, d.offset + hi};
}

/**
 * Enqueues on @p st the stream-side waits batch [lo, hi) needs:
 * writers wait on the last writer and all in-flight readers of each
 * touched limb, readers only on the last writer. Events already
 * signalled, recorded on this same stream (in-order), or duplicated
 * across operands are skipped.
 */
void
waitHazards(Stream &st, std::initializer_list<Dep> deps,
            const std::vector<Event> &extraWaits, std::size_t lo,
            std::size_t hi)
{
    std::vector<Event> waits;
    auto consider = [&](const Event &e) {
        if (e.ready() || e.streamId() == st.id())
            return;
        for (const Event &w : waits)
            if (w.sameAs(e))
                return;
        waits.push_back(e);
    };
    for (const Dep &d : deps) {
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i) {
            consider(p[i].lastWrite());
            if (d.mode == Access::Write)
                for (const Event &r : p[i].lastReads())
                    consider(r);
        }
    }
    for (const Event &e : extraWaits)
        consider(e);
    for (const Event &e : waits)
        st.wait(e);
}

/**
 * Records batch [lo, hi)'s completion event onto the operand limbs.
 * Writes are noted before reads so that an operand appearing as both
 * (in-place kernels) ends up tracked as written-then-read.
 */
void
noteBatch(std::initializer_list<Dep> deps, std::size_t lo,
          std::size_t hi, const Event &ev)
{
    for (const Dep &d : deps) {
        if (d.mode != Access::Write)
            continue;
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i)
            p[i].noteWrite(ev);
    }
    for (const Dep &d : deps) {
        if (d.mode != Access::Read)
            continue;
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i)
            p[i].noteRead(ev);
    }
}

} // namespace

void
forBatches(const Context &ctx, std::size_t numLimbs,
           u64 bytesReadPerLimb, u64 bytesWrittenPerLimb,
           u64 intOpsPerLimb,
           const std::function<void(std::size_t, std::size_t)> &fn,
           const std::function<u32(std::size_t)> &primeAt,
           std::initializer_list<Dep> deps,
           const std::vector<Event> &extraWaits,
           std::vector<Event> *recorded)
{
    if (numLimbs == 0)
        return;
    std::size_t batch = ctx.limbBatch() == 0 ? numLimbs : ctx.limbBatch();
    if (batch == 0)
        batch = 1;
    DeviceSet &devs = ctx.devices();
    const u32 numStreams = devs.numStreams();
    devs.noteLogicalKernel();

    if (numStreams == 1) {
        // A single stream is in-order by construction: run the
        // batches eagerly on the submitting thread. No events are
        // recorded or waited (everything this kernel could depend on
        // already ran inline too; extraWaits are signalled for the
        // same reason).
        for (const Event &e : extraWaits)
            e.synchronize();
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            devs.stream(0).device().launch(
                (hi - lo) * bytesReadPerLimb,
                (hi - lo) * bytesWrittenPerLimb,
                (hi - lo) * intOpsPerLimb);
            fn(lo, hi);
        }
        return;
    }

    // Asynchronous multi-stream dispatch. The body is copied once and
    // shared by every batch; each queued task also holds the operand
    // partitions alive so a temporary polynomial may be destroyed
    // while its kernels are still in flight.
    auto body = std::make_shared<
        const std::function<void(std::size_t, std::size_t)>>(fn);
    std::vector<std::shared_ptr<LimbPartition>> keep;
    keep.reserve(deps.size());
    for (const Dep &d : deps)
        keep.push_back(d.poly->partShared());

    // Launch accounting and the simulated CPU-side launch overhead
    // are paid on the submitting thread, in submission order, exactly
    // as a CUDA launch would. Batches of one kernel touch disjoint
    // limb ranges, so they execute concurrently; ordering against
    // OTHER kernels on the same operands is enforced stream-side by
    // the recorded events -- the host never joins here.
    auto launchOn = [&](Stream &st, std::size_t lo, std::size_t hi) {
        st.device().launch((hi - lo) * bytesReadPerLimb,
                           (hi - lo) * bytesWrittenPerLimb,
                           (hi - lo) * intOpsPerLimb);
        waitHazards(st, deps, extraWaits, lo, hi);
        st.submit([body, keep, lo, hi] { (*body)(lo, hi); });
        Event ev = st.record();
        noteBatch(deps, lo, hi, ev);
        if (recorded)
            recorded->push_back(std::move(ev));
    };

    if (primeAt && devs.numDevices() > 1) {
        // Ownership-aware dispatch: split each batch at device
        // boundaries (rare, since placement is contiguous blocks of
        // the RNS base) and run every piece on a stream of the device
        // that owns its limbs, so work is accounted where the data
        // lives and kernels never touch a peer device's memory.
        std::vector<u32> rr(devs.numDevices(), 0);
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            std::size_t sub = lo;
            while (sub < hi) {
                const u32 d = ctx.deviceFor(primeAt(sub)).id();
                std::size_t end = sub + 1;
                while (end < hi && ctx.deviceFor(primeAt(end)).id() == d)
                    ++end;
                launchOn(devs.streamOfDevice(d, rr[d]++), sub, end);
                sub = end;
            }
        }
    } else {
        // Shape-free fallback: round-robin over all streams.
        u32 next = 0;
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            Stream &st = devs.stream(next);
            next = (next + 1) % numStreams;
            launchOn(st, lo, hi);
        }
    }
}

void
addInto(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, n,
               [&ctx, &ap, &bp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(ap[i].primeIdx() == bp[i].primeIdx());
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].data();
            const u64 *y = bp[i].data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = addMod(x[j], y[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); },
       {wr(a), rd(b)});
}

void
subInto(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, n,
               [&ctx, &ap, &bp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(ap[i].primeIdx() == bp[i].primeIdx());
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].data();
            const u64 *y = bp[i].data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = subMod(x[j], y[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); },
       {wr(a), rd(b)});
}

void
negate(RNSPoly &a)
{
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = negMod(x[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
mulInto(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, 5 * n,
               [&ctx, &ap, &bp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(ap[i].primeIdx() == bp[i].primeIdx());
            const Modulus &m = ctx.prime(ap[i].primeIdx()).mod;
            mulSpan(ctx, ap[i].data(), ap[i].data(), bp[i].data(), n,
                    m);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); },
       {wr(a), rd(b)});
}

void
mul(RNSPoly &out, const RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() <= a.numLimbs() &&
                 out.numLimbs() <= b.numLimbs());
    out.setFormat(Format::Eval);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &op = out.partition();
    const LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, out.numLimbs(), 2 * n * kWord, n * kWord, 5 * n,
               [&ctx, &op, &ap, &bp, n](std::size_t lo,
                                        std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const Modulus &m = ctx.prime(op[i].primeIdx()).mod;
            mulSpan(ctx, op[i].data(), ap[i].data(), bp[i].data(), n,
                    m);
        }
    }, [&op](std::size_t i) { return op[i].primeIdx(); },
       {wr(out), rd(a), rd(b)});
}

void
mulAddInto(RNSPoly &acc, const RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(acc.numLimbs() <= a.numLimbs() &&
                 acc.numLimbs() <= b.numLimbs());
    const auto &ctx = acc.context();
    const std::size_t n = ctx.degree();
    LimbPartition &cp = acc.partition();
    const LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, acc.numLimbs(), 3 * n * kWord, n * kWord, 6 * n,
               [&ctx, &cp, &ap, &bp, n](std::size_t lo,
                                        std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const Modulus &m = ctx.prime(cp[i].primeIdx()).mod;
            mulAddSpan(ctx, cp[i].data(), ap[i].data(), bp[i].data(),
                       n, m);
        }
    }, [&cp](std::size_t i) { return cp[i].primeIdx(); },
       {wr(acc), rd(a), rd(b)});
}

void
scalarMulInto(RNSPoly &a, const std::vector<u64> &scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    // The scalar vector is caller stack state: copy it into the body.
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, 3 * n,
               [&ctx, &ap, n, scalar](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 w = scalar[i];
            u64 ws = shoupPrecompute(w, p);
            u64 *x = ap[i].data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = mulModShoup(x[j], w, ws, p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
scalarAddInto(RNSPoly &a, const std::vector<u64> &scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n, scalar](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 c = scalar[i];
            u64 *x = ap[i].data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = addMod(x[j], c, p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
scalarSubFrom(RNSPoly &a, const std::vector<u64> &scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n, scalar](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 c = scalar[i];
            u64 *x = ap[i].data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = subMod(c, x[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
nttLimb(const Context &ctx, u64 *data, u32 primeIdx)
{
    const NttTables &t = *ctx.prime(primeIdx).ntt;
    if (ctx.nttSchedule() == NttSchedule::Hierarchical)
        nttForwardHierarchical(data, t);
    else
        nttForward(data, t);
}

void
inttLimb(const Context &ctx, u64 *data, u32 primeIdx)
{
    const NttTables &t = *ctx.prime(primeIdx).ntt;
    if (ctx.nttSchedule() == NttSchedule::Hierarchical)
        nttInverseHierarchical(data, t);
    else
        nttInverse(data, t);
}

/**
 * Modelled off-chip traffic of one NTT limb: the hierarchical 2D
 * schedule touches every element in exactly two passes (four memory
 * accesses per element, paper Figure 3); a flat radix-2 schedule
 * spills one pass per pair of stages once the limb exceeds on-chip
 * memory.
 */
static u64
nttPassesPerLimb(const Context &ctx)
{
    if (ctx.nttSchedule() == NttSchedule::Hierarchical)
        return 2;
    return std::max<u64>(2, ctx.logDegree() / 2);
}

void
toEval(RNSPoly &a)
{
    FIDES_ASSERT(a.format() == Format::Coeff);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    const u64 logN = ctx.logDegree();
    const u64 passes = nttPassesPerLimb(ctx);
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), passes * n * kWord,
               passes * n * kWord, 5 * n * logN,
               [&ctx, &ap](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            nttLimb(ctx, ap[i].data(), ap[i].primeIdx());
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
    a.setFormat(Format::Eval);
}

void
toCoeff(RNSPoly &a)
{
    FIDES_ASSERT(a.format() == Format::Eval);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    const u64 logN = ctx.logDegree();
    const u64 passes = nttPassesPerLimb(ctx);
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), passes * n * kWord,
               passes * n * kWord, 5 * n * logN,
               [&ctx, &ap](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            inttLimb(ctx, ap[i].data(), ap[i].primeIdx());
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
    a.setFormat(Format::Coeff);
}

void
automorph(RNSPoly &out, const RNSPoly &in, const std::vector<u32> &perm)
{
    FIDES_ASSERT(in.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() == in.numLimbs());
    const auto &ctx = in.context();
    const std::size_t n = ctx.degree();
    out.setFormat(Format::Eval);
    LimbPartition &op = out.partition();
    const LimbPartition &ip = in.partition();
    // perm lives in the Context's automorphism cache (node-stable).
    const u32 *pm = perm.data();
    forBatches(ctx, in.numLimbs(), n * kWord, n * kWord, 0,
               [&op, &ip, pm, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const u64 *src = ip[i].data();
            u64 *dst = op[i].data();
            for (std::size_t j = 0; j < n; ++j)
                dst[j] = src[pm[j]];
        }
    }, [&ip](std::size_t i) { return ip[i].primeIdx(); },
       {wr(out), rd(in)});
}

void
mulByMonomial(RNSPoly &a, u64 k)
{
    FIDES_ASSERT(a.format() == Format::Coeff);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    k %= 2 * n;
    if (k == 0)
        return;
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n, k](std::size_t lo, std::size_t hi) {
        // Per-batch scratch: batches run on concurrent streams.
        std::vector<u64> tmp(n);
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].data();
            // X^j * X^k = sign * X^((j+k) mod n), negacyclic wrap.
            for (std::size_t j = 0; j < n; ++j) {
                std::size_t jj = j + static_cast<std::size_t>(k);
                bool flip = (jj / n) & 1;
                jj %= n;
                tmp[jj] = flip ? negMod(x[j], p) : x[j];
            }
            std::copy(tmp.begin(), tmp.end(), x);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
switchModulusLimb(const Context &ctx, const u64 *src, u64 srcPrime,
                  u64 *dst, u32 dstPrimeIdx)
{
    const Modulus &dm = ctx.prime(dstPrimeIdx).mod;
    const std::size_t n = ctx.degree();
    const u64 half = srcPrime >> 1;
    if (dm.value >= srcPrime) {
        const u64 diff = (dm.value - srcPrime) % dm.value;
        for (std::size_t j = 0; j < n; ++j) {
            // Recentre: values above q/2 represent negatives.
            u64 v = src[j];
            dst[j] = v > half ? addMod(v, diff, dm.value)
                              : barrettReduce64(v, dm);
        }
    } else {
        for (std::size_t j = 0; j < n; ++j) {
            u64 v = src[j];
            if (v > half) {
                // v - q mod p = v mod p - q mod p
                u64 r = barrettReduce64(v, dm);
                u64 qr = barrettReduce64(srcPrime, dm);
                dst[j] = subMod(r, qr, dm.value);
            } else {
                dst[j] = barrettReduce64(v, dm);
            }
        }
    }
}

} // namespace fideslib::ckks::kernels
