#include "ckks/kernels.hpp"

#include "core/logging.hpp"

namespace fideslib::ckks::kernels
{

namespace
{

constexpr u64 kWord = sizeof(u64);

/** Pointwise modular multiply with the configured reduction. */
inline void
mulSpan(const Context &ctx, u64 *dst, const u64 *a, const u64 *b,
        std::size_t n, const Modulus &m)
{
    if (ctx.modMulKind() == ModMulKind::Barrett) {
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = mulModBarrett(a[j], b[j], m);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = mulModNaive(a[j], b[j], m.value);
    }
}

inline void
mulAddSpan(const Context &ctx, u64 *acc, const u64 *a, const u64 *b,
           std::size_t n, const Modulus &m)
{
    if (ctx.modMulKind() == ModMulKind::Barrett) {
        for (std::size_t j = 0; j < n; ++j)
            acc[j] = addMod(acc[j], mulModBarrett(a[j], b[j], m),
                            m.value);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            acc[j] = addMod(acc[j], mulModNaive(a[j], b[j], m.value),
                            m.value);
    }
}

} // namespace

void
forBatches(const Context &ctx, std::size_t numLimbs,
           u64 bytesReadPerLimb, u64 bytesWrittenPerLimb,
           u64 intOpsPerLimb,
           const std::function<void(std::size_t, std::size_t)> &fn,
           const std::function<u32(std::size_t)> &primeAt)
{
    if (numLimbs == 0)
        return;
    std::size_t batch = ctx.limbBatch() == 0 ? numLimbs : ctx.limbBatch();
    if (batch == 0)
        batch = 1;
    DeviceSet &devs = ctx.devices();
    const u32 numStreams = devs.numStreams();

    // Launch accounting and the simulated CPU-side launch overhead
    // are paid on the submitting thread, in submission order, exactly
    // as a CUDA launch would. Batches touch disjoint limb ranges, so
    // they execute concurrently; the logical kernel completes at the
    // barrier, giving callers in-order semantics at kernel joins.
    auto launchOn = [&](Stream &st, std::size_t lo, std::size_t hi,
                        bool inline_) {
        st.device().launch((hi - lo) * bytesReadPerLimb,
                           (hi - lo) * bytesWrittenPerLimb,
                           (hi - lo) * intOpsPerLimb);
        if (inline_)
            fn(lo, hi);
        else
            st.submit([&fn, lo, hi] { fn(lo, hi); });
    };

    if (primeAt && devs.numDevices() > 1) {
        // Ownership-aware dispatch: split each batch at device
        // boundaries (rare, since placement is contiguous blocks of
        // the RNS base) and run every piece on a stream of the device
        // that owns its limbs, so work is accounted where the data
        // lives and kernels never touch a peer device's memory.
        std::vector<u32> rr(devs.numDevices(), 0);
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            std::size_t sub = lo;
            while (sub < hi) {
                const u32 d = ctx.deviceFor(primeAt(sub)).id();
                std::size_t end = sub + 1;
                while (end < hi && ctx.deviceFor(primeAt(end)).id() == d)
                    ++end;
                // numDevices > 1 implies at least two streams.
                launchOn(devs.streamOfDevice(d, rr[d]++), sub, end,
                         /*inline_=*/false);
                sub = end;
            }
        }
    } else if (numStreams == 1) {
        // A single stream is in-order by construction: run the
        // batches eagerly on the submitting thread.
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            std::size_t hi = std::min(numLimbs, lo + batch);
            launchOn(devs.stream(0), lo, hi, /*inline_=*/true);
        }
        return;
    } else {
        // Shape-free fallback: round-robin over all streams.
        u32 next = 0;
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            std::size_t hi = std::min(numLimbs, lo + batch);
            Stream &st = devs.stream(next);
            next = (next + 1) % numStreams;
            launchOn(st, lo, hi, /*inline_=*/false);
        }
    }
    devs.synchronize();
}

void
addInto(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(a.primeIdxAt(i) == b.primeIdxAt(i));
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 *x = a.limb(i).data();
            const u64 *y = b.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = addMod(x[j], y[j], p);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
subInto(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(a.primeIdxAt(i) == b.primeIdxAt(i));
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 *x = a.limb(i).data();
            const u64 *y = b.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = subMod(x[j], y[j], p);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
negate(RNSPoly &a)
{
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 *x = a.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = negMod(x[j], p);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
mulInto(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, 5 * n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(a.primeIdxAt(i) == b.primeIdxAt(i));
            const Modulus &m = ctx.prime(a.primeIdxAt(i)).mod;
            mulSpan(ctx, a.limb(i).data(), a.limb(i).data(),
                    b.limb(i).data(), n, m);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
mul(RNSPoly &out, const RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() <= a.numLimbs() &&
                 out.numLimbs() <= b.numLimbs());
    out.setFormat(Format::Eval);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, out.numLimbs(), 2 * n * kWord, n * kWord, 5 * n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const Modulus &m = ctx.prime(out.primeIdxAt(i)).mod;
            mulSpan(ctx, out.limb(i).data(), a.limb(i).data(),
                    b.limb(i).data(), n, m);
        }
    }, [&](std::size_t i) { return out.primeIdxAt(i); });
}

void
mulAddInto(RNSPoly &acc, const RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(acc.numLimbs() <= a.numLimbs() &&
                 acc.numLimbs() <= b.numLimbs());
    const auto &ctx = acc.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, acc.numLimbs(), 3 * n * kWord, n * kWord, 6 * n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const Modulus &m = ctx.prime(acc.primeIdxAt(i)).mod;
            mulAddSpan(ctx, acc.limb(i).data(), a.limb(i).data(),
                       b.limb(i).data(), n, m);
        }
    }, [&](std::size_t i) { return acc.primeIdxAt(i); });
}

void
scalarMulInto(RNSPoly &a, const std::vector<u64> &scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, 3 * n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 w = scalar[i];
            u64 ws = shoupPrecompute(w, p);
            u64 *x = a.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = mulModShoup(x[j], w, ws, p);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
scalarAddInto(RNSPoly &a, const std::vector<u64> &scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 c = scalar[i];
            u64 *x = a.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = addMod(x[j], c, p);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
scalarSubFrom(RNSPoly &a, const std::vector<u64> &scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 c = scalar[i];
            u64 *x = a.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = subMod(c, x[j], p);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
nttLimb(const Context &ctx, u64 *data, u32 primeIdx)
{
    const NttTables &t = *ctx.prime(primeIdx).ntt;
    if (ctx.nttSchedule() == NttSchedule::Hierarchical)
        nttForwardHierarchical(data, t);
    else
        nttForward(data, t);
}

void
inttLimb(const Context &ctx, u64 *data, u32 primeIdx)
{
    const NttTables &t = *ctx.prime(primeIdx).ntt;
    if (ctx.nttSchedule() == NttSchedule::Hierarchical)
        nttInverseHierarchical(data, t);
    else
        nttInverse(data, t);
}

/**
 * Modelled off-chip traffic of one NTT limb: the hierarchical 2D
 * schedule touches every element in exactly two passes (four memory
 * accesses per element, paper Figure 3); a flat radix-2 schedule
 * spills one pass per pair of stages once the limb exceeds on-chip
 * memory.
 */
static u64
nttPassesPerLimb(const Context &ctx)
{
    if (ctx.nttSchedule() == NttSchedule::Hierarchical)
        return 2;
    return std::max<u64>(2, ctx.logDegree() / 2);
}

void
toEval(RNSPoly &a)
{
    FIDES_ASSERT(a.format() == Format::Coeff);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    const u64 logN = ctx.logDegree();
    const u64 passes = nttPassesPerLimb(ctx);
    forBatches(ctx, a.numLimbs(), passes * n * kWord,
               passes * n * kWord, 5 * n * logN,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            nttLimb(ctx, a.limb(i).data(), a.primeIdxAt(i));
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
    a.setFormat(Format::Eval);
}

void
toCoeff(RNSPoly &a)
{
    FIDES_ASSERT(a.format() == Format::Eval);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    const u64 logN = ctx.logDegree();
    const u64 passes = nttPassesPerLimb(ctx);
    forBatches(ctx, a.numLimbs(), passes * n * kWord,
               passes * n * kWord, 5 * n * logN,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            inttLimb(ctx, a.limb(i).data(), a.primeIdxAt(i));
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
    a.setFormat(Format::Coeff);
}

void
automorph(RNSPoly &out, const RNSPoly &in, const std::vector<u32> &perm)
{
    FIDES_ASSERT(in.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() == in.numLimbs());
    const auto &ctx = in.context();
    const std::size_t n = ctx.degree();
    out.setFormat(Format::Eval);
    forBatches(ctx, in.numLimbs(), n * kWord, n * kWord, 0,
               [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const u64 *src = in.limb(i).data();
            u64 *dst = out.limb(i).data();
            for (std::size_t j = 0; j < n; ++j)
                dst[j] = src[perm[j]];
        }
    }, [&](std::size_t i) { return in.primeIdxAt(i); });
}

void
mulByMonomial(RNSPoly &a, u64 k)
{
    FIDES_ASSERT(a.format() == Format::Coeff);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    k %= 2 * n;
    if (k == 0)
        return;
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&](std::size_t lo, std::size_t hi) {
        std::vector<u64> tmp(n);
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(a.primeIdxAt(i)).value();
            u64 *x = a.limb(i).data();
            // X^j * X^k = sign * X^((j+k) mod n), negacyclic wrap.
            for (std::size_t j = 0; j < n; ++j) {
                std::size_t jj = j + static_cast<std::size_t>(k);
                bool flip = (jj / n) & 1;
                jj %= n;
                tmp[jj] = flip ? negMod(x[j], p) : x[j];
            }
            std::copy(tmp.begin(), tmp.end(), x);
        }
    }, [&](std::size_t i) { return a.primeIdxAt(i); });
}

void
switchModulusLimb(const Context &ctx, const u64 *src, u64 srcPrime,
                  u64 *dst, u32 dstPrimeIdx)
{
    const Modulus &dm = ctx.prime(dstPrimeIdx).mod;
    const std::size_t n = ctx.degree();
    const u64 half = srcPrime >> 1;
    if (dm.value >= srcPrime) {
        const u64 diff = (dm.value - srcPrime) % dm.value;
        for (std::size_t j = 0; j < n; ++j) {
            // Recentre: values above q/2 represent negatives.
            u64 v = src[j];
            dst[j] = v > half ? addMod(v, diff, dm.value)
                              : barrettReduce64(v, dm);
        }
    } else {
        for (std::size_t j = 0; j < n; ++j) {
            u64 v = src[j];
            if (v > half) {
                // v - q mod p = v mod p - q mod p
                u64 r = barrettReduce64(v, dm);
                u64 qr = barrettReduce64(srcPrime, dm);
                dst[j] = subMod(r, qr, dm.value);
            } else {
                dst[j] = barrettReduce64(v, dm);
            }
        }
    }
}

} // namespace fideslib::ckks::kernels
