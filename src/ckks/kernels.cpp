#include "ckks/kernels.hpp"

#include "ckks/graph.hpp"
#include "core/logging.hpp"

namespace fideslib::ckks::kernels
{

namespace
{

constexpr u64 kWord = sizeof(u64);

/** Pointwise modular multiply with the configured reduction. */
inline void
mulSpan(const Context &ctx, u64 *dst, const u64 *a, const u64 *b,
        std::size_t n, const Modulus &m)
{
    if (ctx.modMulKind() == ModMulKind::Barrett) {
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = mulModBarrett(a[j], b[j], m);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = mulModNaive(a[j], b[j], m.value);
    }
}

inline void
mulAddSpan(const Context &ctx, u64 *acc, const u64 *a, const u64 *b,
           std::size_t n, const Modulus &m)
{
    if (ctx.modMulKind() == ModMulKind::Barrett) {
        for (std::size_t j = 0; j < n; ++j)
            acc[j] = addMod(acc[j], mulModBarrett(a[j], b[j], m),
                            m.value);
    } else {
        for (std::size_t j = 0; j < n; ++j)
            acc[j] = addMod(acc[j], mulModNaive(a[j], b[j], m.value),
                            m.value);
    }
}

/** The limb range of @p d that batch [lo, hi) touches. */
inline std::pair<std::size_t, std::size_t>
depRange(const Dep &d, std::size_t lo, std::size_t hi)
{
    if (d.whole)
        return {0, d.poly->numLimbs()};
    if (d.fixed)
        return {d.offset, d.offset + 1};
    return {d.offset + lo, d.offset + hi};
}

/** The validator's view of one batch's declared Dep list: the actual
 *  limb buffers [lo, hi) resolves to. Only built when validation is
 *  on. */
std::vector<check::DeclaredAccess>
declaredAccesses(const std::vector<Dep> &deps, std::size_t lo,
                 std::size_t hi)
{
    std::vector<check::DeclaredAccess> out;
    for (const Dep &d : deps) {
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i) {
            const Limb &l = p[i];
            out.push_back({l.data(), l.primeIdx(),
                           d.mode == Access::Write});
        }
    }
    return out;
}

/**
 * Enqueues on @p st the stream-side waits batch [lo, hi) needs:
 * writers wait on the last writer and all in-flight readers of each
 * touched limb, readers only on the last writer. Events already
 * signalled, recorded on this same stream (in-order), or duplicated
 * across operands are skipped.
 */
void
waitHazards(Stream &st, const std::vector<Dep> &deps,
            const std::vector<Event> &extraWaits, std::size_t lo,
            std::size_t hi)
{
    std::vector<Event> waits;
    auto consider = [&](const Event &e) {
        if (e.ready() || e.streamId() == st.id())
            return;
        for (const Event &w : waits)
            if (w.sameAs(e))
                return;
        waits.push_back(e);
    };
    for (const Dep &d : deps) {
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i) {
            consider(p[i].lastWrite());
            if (d.mode == Access::Write)
                for (const Event &r : p[i].lastReads())
                    consider(r);
        }
    }
    for (const Event &e : extraWaits)
        consider(e);
    for (const Event &e : waits)
        st.wait(e);
}

/**
 * Records batch [lo, hi)'s completion event onto the operand limbs.
 * Writes are noted before reads so that an operand appearing as both
 * (in-place kernels) ends up tracked as written-then-read.
 */
void
noteBatch(const std::vector<Dep> &deps, std::size_t lo,
          std::size_t hi, const Event &ev)
{
    for (const Dep &d : deps) {
        if (d.mode != Access::Write)
            continue;
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i)
            p[i].noteWrite(ev);
    }
    for (const Dep &d : deps) {
        if (d.mode != Access::Read)
            continue;
        const LimbPartition &p = d.poly->partition();
        auto [b, e] = depRange(d, lo, hi);
        for (std::size_t i = b; i < e; ++i)
            p[i].noteRead(ev);
    }
}

} // namespace

void
forBatches(const Context &ctx, std::size_t numLimbs,
           u64 bytesReadPerLimb, u64 bytesWrittenPerLimb,
           u64 intOpsPerLimb,
           const std::function<void(std::size_t, std::size_t)> &fn,
           const std::function<u32(std::size_t)> &primeAt,
           const std::vector<Dep> &deps,
           const std::vector<Event> &extraWaits,
           std::vector<Event> *recorded)
{
    if (numLimbs == 0)
        return;
    std::size_t batch = ctx.limbBatch() == 0 ? numLimbs : ctx.limbBatch();
    if (batch == 0)
        batch = 1;
    DeviceSet &devs = ctx.devices();
    const u32 numStreams = devs.numStreams();
    devs.noteLogicalKernel();

    // Replay mode: a captured plan supplies the batch split, stream
    // assignment and hazard edges; only the body is rebuilt (it
    // closes over THIS call's polynomials). No hazard derivation, no
    // stream picking, no per-launch dispatch overhead.
    if (GraphReplay *replay = ctx.replaySession()) {
        replay->replayCall(numLimbs, bytesReadPerLimb,
                           bytesWrittenPerLimb, intOpsPerLimb, fn,
                           deps, recorded);
        return;
    }
    // Capture mode: execute live below, additionally recording every
    // launch (stream, batch range, counters) and deriving the hazard
    // structure symbolically from the Dep list.
    GraphCapture *capture = ctx.captureSession();
    if (capture)
        capture->beginCall(numLimbs, deps);

    if (numStreams == 1) {
        // A single stream is in-order by construction: run the
        // batches eagerly on the submitting thread. No events are
        // recorded or waited (everything this kernel could depend on
        // already ran inline too; extraWaits are signalled for the
        // same reason).
        for (const Event &e : extraWaits)
            e.synchronize();
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            devs.stream(0).device().launch(
                (hi - lo) * bytesReadPerLimb,
                (hi - lo) * bytesWrittenPerLimb,
                (hi - lo) * intOpsPerLimb);
            if (capture) {
                capture->recordNode(0, lo, hi,
                                    (hi - lo) * bytesReadPerLimb,
                                    (hi - lo) * bytesWrittenPerLimb,
                                    (hi - lo) * intOpsPerLimb, deps,
                                    extraWaits, Event());
            }
            if (check::enabled()) {
                check::BodyScope scope(check::beginLaunch(
                    nullptr, declaredAccesses(deps, lo, hi)));
                fn(lo, hi);
            } else {
                fn(lo, hi);
            }
        }
        return;
    }

    // Asynchronous multi-stream dispatch. The body is copied once and
    // shared by every batch; each queued task also holds the operand
    // partitions alive so a temporary polynomial may be destroyed
    // while its kernels are still in flight.
    auto body = std::make_shared<
        const std::function<void(std::size_t, std::size_t)>>(fn);
    std::vector<std::shared_ptr<LimbPartition>> keep;
    keep.reserve(deps.size());
    for (const Dep &d : deps)
        keep.push_back(d.poly->partShared());

    // Launch accounting and the simulated CPU-side launch overhead
    // are paid on the submitting thread, in submission order, exactly
    // as a CUDA launch would. Batches of one kernel touch disjoint
    // limb ranges, so they execute concurrently; ordering against
    // OTHER kernels on the same operands is enforced stream-side by
    // the recorded events -- the host never joins here.
    auto launchOn = [&](Stream &st, std::size_t lo, std::size_t hi) {
        st.device().launch((hi - lo) * bytesReadPerLimb,
                           (hi - lo) * bytesWrittenPerLimb,
                           (hi - lo) * intOpsPerLimb);
        waitHazards(st, deps, extraWaits, lo, hi);
        if (check::enabled()) {
            // Registered after the hazard waits so the launch clock
            // includes the edges they established; the record rides
            // along in the task so the worker-side body accesses are
            // attributed to this launch.
            auto rec = check::beginLaunch(
                &st, declaredAccesses(deps, lo, hi));
            st.submit([body, keep, rec, lo, hi] {
                check::BodyScope scope(rec);
                (*body)(lo, hi);
            });
        } else {
            st.submit([body, keep, lo, hi] { (*body)(lo, hi); });
        }
        Event ev = st.record();
        noteBatch(deps, lo, hi, ev);
        if (capture) {
            capture->recordNode(st.id(), lo, hi,
                                (hi - lo) * bytesReadPerLimb,
                                (hi - lo) * bytesWrittenPerLimb,
                                (hi - lo) * intOpsPerLimb, deps,
                                extraWaits, ev);
        }
        if (recorded)
            recorded->push_back(std::move(ev));
    };

    // Stream picks go through the calling thread's lease (the whole
    // set outside serving): a request's kernels stay on its
    // submitter's streams, so concurrent requests never interleave on
    // one stream.
    const StreamLease &leased = ctx.streamLease();
    if (primeAt && devs.numDevices() > 1) {
        // Ownership-aware dispatch: split each batch at device
        // boundaries (rare, since placement is contiguous blocks of
        // the RNS base) and run every piece on a stream of the device
        // that owns its limbs, so work is accounted where the data
        // lives and kernels never touch a peer device's memory.
        std::vector<u32> rr(devs.numDevices(), 0);
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            std::size_t sub = lo;
            while (sub < hi) {
                const u32 d = ctx.deviceFor(primeAt(sub)).id();
                std::size_t end = sub + 1;
                while (end < hi && ctx.deviceFor(primeAt(end)).id() == d)
                    ++end;
                launchOn(leased.streamOfDevice(d, rr[d]++), sub, end);
                sub = end;
            }
        }
    } else {
        // Shape-free fallback: round-robin over the leased streams.
        u32 next = 0;
        for (std::size_t lo = 0; lo < numLimbs; lo += batch) {
            const std::size_t hi = std::min(numLimbs, lo + batch);
            Stream &st = leased.stream(next);
            next = (next + 1) % leased.numStreams();
            launchOn(st, lo, hi);
        }
    }
}

void
addInto(RNSPoly &a, const RNSPoly &b)
{
    check::ScopedLabel lbl("addInto");
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, n,
               [&ctx, &ap, &bp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(ap[i].primeIdx() == bp[i].primeIdx());
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].write();
            const u64 *y = bp[i].read();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = addMod(x[j], y[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); },
       {wr(a), rd(b)});
}

void
subInto(RNSPoly &a, const RNSPoly &b)
{
    check::ScopedLabel lbl("subInto");
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, n,
               [&ctx, &ap, &bp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(ap[i].primeIdx() == bp[i].primeIdx());
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].write();
            const u64 *y = bp[i].read();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = subMod(x[j], y[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); },
       {wr(a), rd(b)});
}

void
negate(RNSPoly &a)
{
    check::ScopedLabel lbl("negate");
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].write();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = negMod(x[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
mulInto(RNSPoly &a, const RNSPoly &b)
{
    check::ScopedLabel lbl("mulInto");
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, a.numLimbs(), 2 * n * kWord, n * kWord, 5 * n,
               [&ctx, &ap, &bp, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            FIDES_ASSERT(ap[i].primeIdx() == bp[i].primeIdx());
            const Modulus &m = ctx.prime(ap[i].primeIdx()).mod;
            u64 *x = ap[i].write();
            mulSpan(ctx, x, x, bp[i].read(), n, m);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); },
       {wr(a), rd(b)});
}

void
mul(RNSPoly &out, const RNSPoly &a, const RNSPoly &b)
{
    check::ScopedLabel lbl("mul");
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() <= a.numLimbs() &&
                 out.numLimbs() <= b.numLimbs());
    out.setFormat(Format::Eval);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &op = out.partition();
    const LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, out.numLimbs(), 2 * n * kWord, n * kWord, 5 * n,
               [&ctx, &op, &ap, &bp, n](std::size_t lo,
                                        std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const Modulus &m = ctx.prime(op[i].primeIdx()).mod;
            mulSpan(ctx, op[i].write(), ap[i].read(), bp[i].read(), n,
                    m);
        }
    }, [&op](std::size_t i) { return op[i].primeIdx(); },
       {wr(out), rd(a), rd(b)});
}

void
mulAddInto(RNSPoly &acc, const RNSPoly &a, const RNSPoly &b)
{
    check::ScopedLabel lbl("mulAddInto");
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(acc.numLimbs() <= a.numLimbs() &&
                 acc.numLimbs() <= b.numLimbs());
    const auto &ctx = acc.context();
    const std::size_t n = ctx.degree();
    LimbPartition &cp = acc.partition();
    const LimbPartition &ap = a.partition();
    const LimbPartition &bp = b.partition();
    forBatches(ctx, acc.numLimbs(), 3 * n * kWord, n * kWord, 6 * n,
               [&ctx, &cp, &ap, &bp, n](std::size_t lo,
                                        std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const Modulus &m = ctx.prime(cp[i].primeIdx()).mod;
            mulAddSpan(ctx, cp[i].write(), ap[i].read(), bp[i].read(),
                       n, m);
        }
    }, [&cp](std::size_t i) { return cp[i].primeIdx(); },
       {wr(acc), rd(a), rd(b)});
}

void
scalarMulInto(RNSPoly &a, const std::vector<u64> &scalar)
{
    check::ScopedLabel lbl("scalarMulInto");
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    // The scalar vector is caller stack state: copy it into the body.
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, 3 * n,
               [&ctx, &ap, n, scalar](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 w = scalar[i];
            u64 ws = shoupPrecompute(w, p);
            u64 *x = ap[i].write();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = mulModShoup(x[j], w, ws, p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
scalarAddInto(RNSPoly &a, const std::vector<u64> &scalar)
{
    check::ScopedLabel lbl("scalarAddInto");
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n, scalar](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 c = scalar[i];
            u64 *x = ap[i].write();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = addMod(x[j], c, p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
scalarSubFrom(RNSPoly &a, const std::vector<u64> &scalar)
{
    check::ScopedLabel lbl("scalarSubFrom");
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n, scalar](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 c = scalar[i];
            u64 *x = ap[i].write();
            for (std::size_t j = 0; j < n; ++j)
                x[j] = subMod(c, x[j], p);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
nttLimb(const Context &ctx, u64 *data, u32 primeIdx,
        std::size_t shapeLimbs)
{
    const NttTables &t = *ctx.prime(primeIdx).ntt;
    const NttChoice c = ctx.nttChoiceFor(shapeLimbs);
    nttForwardVariant(data, t, c.fwd, c.fwdColBlock);
}

void
inttLimb(const Context &ctx, u64 *data, u32 primeIdx,
         std::size_t shapeLimbs)
{
    const NttTables &t = *ctx.prime(primeIdx).ntt;
    const NttChoice c = ctx.nttChoiceFor(shapeLimbs);
    nttInverseVariant(data, t, c.inv, c.invColBlock);
}

/**
 * Modelled off-chip traffic of one NTT limb under variant @p v: the
 * hierarchical 2D schedules touch every element in exactly two passes
 * (four memory accesses per element, paper Figure 3); a flat radix-2
 * schedule spills one pass per pair of stages once the limb exceeds
 * on-chip memory, and the radix-4 schedule halves that by keeping
 * four elements in registers across two stages.
 */
static u64
nttPassesPerLimb(const Context &ctx, NttVariant v)
{
    switch (v) {
    case NttVariant::Hierarchical:
    case NttVariant::BlockedHier:
        return 2;
    case NttVariant::Radix4:
        return std::max<u64>(2, ctx.logDegree() / 4);
    case NttVariant::Flat:
    case NttVariant::FusedLast:
        break;
    }
    return std::max<u64>(2, ctx.logDegree() / 2);
}

void
toEval(RNSPoly &a)
{
    check::ScopedLabel lbl("toEval");
    FIDES_ASSERT(a.format() == Format::Coeff);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    const u64 logN = ctx.logDegree();
    const std::size_t limbs = a.numLimbs();
    // Resolve the tuned schedule once per op, not once per limb.
    const NttChoice c = ctx.nttChoiceFor(limbs);
    const u64 passes = nttPassesPerLimb(ctx, c.fwd);
    LimbPartition &ap = a.partition();
    forBatches(ctx, limbs, passes * n * kWord,
               passes * n * kWord, 5 * n * logN,
               [&ctx, &ap, c](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            nttForwardVariant(ap[i].write(),
                              *ctx.prime(ap[i].primeIdx()).ntt,
                              c.fwd, c.fwdColBlock);
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
    a.setFormat(Format::Eval);
}

void
toCoeff(RNSPoly &a)
{
    check::ScopedLabel lbl("toCoeff");
    FIDES_ASSERT(a.format() == Format::Eval);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    const u64 logN = ctx.logDegree();
    const std::size_t limbs = a.numLimbs();
    const NttChoice c = ctx.nttChoiceFor(limbs);
    const u64 passes = nttPassesPerLimb(ctx, c.inv);
    LimbPartition &ap = a.partition();
    forBatches(ctx, limbs, passes * n * kWord,
               passes * n * kWord, 5 * n * logN,
               [&ctx, &ap, c](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            nttInverseVariant(ap[i].write(),
                              *ctx.prime(ap[i].primeIdx()).ntt,
                              c.inv, c.invColBlock);
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
    a.setFormat(Format::Coeff);
}

void
automorph(RNSPoly &out, const RNSPoly &in, const std::vector<u32> &perm)
{
    check::ScopedLabel lbl("automorph");
    FIDES_ASSERT(in.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() == in.numLimbs());
    const auto &ctx = in.context();
    const std::size_t n = ctx.degree();
    out.setFormat(Format::Eval);
    LimbPartition &op = out.partition();
    const LimbPartition &ip = in.partition();
    // perm lives in the Context's automorphism cache (node-stable).
    const u32 *pm = perm.data();
    forBatches(ctx, in.numLimbs(), n * kWord, n * kWord, 0,
               [&op, &ip, pm, n](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const u64 *src = ip[i].read();
            u64 *dst = op[i].write();
            for (std::size_t j = 0; j < n; ++j)
                dst[j] = src[pm[j]];
        }
    }, [&ip](std::size_t i) { return ip[i].primeIdx(); },
       {wr(out), rd(in)});
}

void
mulByMonomial(RNSPoly &a, u64 k)
{
    check::ScopedLabel lbl("mulByMonomial");
    FIDES_ASSERT(a.format() == Format::Coeff);
    const auto &ctx = a.context();
    const std::size_t n = ctx.degree();
    k %= 2 * n;
    if (k == 0)
        return;
    LimbPartition &ap = a.partition();
    forBatches(ctx, a.numLimbs(), n * kWord, n * kWord, n,
               [&ctx, &ap, n, k](std::size_t lo, std::size_t hi) {
        // Per-batch scratch: batches run on concurrent streams.
        std::vector<u64> tmp(n);
        for (std::size_t i = lo; i < hi; ++i) {
            u64 p = ctx.prime(ap[i].primeIdx()).value();
            u64 *x = ap[i].write();
            // X^j * X^k = sign * X^((j+k) mod n), negacyclic wrap.
            for (std::size_t j = 0; j < n; ++j) {
                std::size_t jj = j + static_cast<std::size_t>(k);
                bool flip = (jj / n) & 1;
                jj %= n;
                tmp[jj] = flip ? negMod(x[j], p) : x[j];
            }
            std::copy(tmp.begin(), tmp.end(), x);
        }
    }, [&ap](std::size_t i) { return ap[i].primeIdx(); }, {wr(a)});
}

void
switchModulusLimb(const Context &ctx, const u64 *src, u64 srcPrime,
                  u64 *dst, u32 dstPrimeIdx)
{
    const Modulus &dm = ctx.prime(dstPrimeIdx).mod;
    const std::size_t n = ctx.degree();
    const u64 half = srcPrime >> 1;
    if (dm.value >= srcPrime) {
        const u64 diff = (dm.value - srcPrime) % dm.value;
        for (std::size_t j = 0; j < n; ++j) {
            // Recentre: values above q/2 represent negatives.
            u64 v = src[j];
            dst[j] = v > half ? addMod(v, diff, dm.value)
                              : barrettReduce64(v, dm);
        }
    } else {
        for (std::size_t j = 0; j < n; ++j) {
            u64 v = src[j];
            if (v > half) {
                // v - q mod p = v mod p - q mod p
                u64 r = barrettReduce64(v, dm);
                u64 qr = barrettReduce64(srcPrime, dm);
                dst[j] = subMod(r, qr, dm.value);
            } else {
                dst[j] = barrettReduce64(v, dm);
            }
        }
    }
}

// --- FusedChain -------------------------------------------------------

/**
 * One recorded element-wise operation. Polynomial operands are stored
 * twice: the RNSPoly pointer feeds the Dep list built at run() (and
 * must stay alive until then), the LimbPartition pointer is what the
 * kernel body dereferences -- heap-stable and kept alive past run()
 * by the Dep keep-alives.
 */
struct FusedChain::Op
{
    enum class Kind : unsigned char
    {
        Mul,
        MulAdd,
        Add,
        Sub,
        ScalarMul,
        Gather,
        GatherMulAcc,
        SwitchModulusExt,
        NttExt,
        SubScalarMulExt,
    };

    explicit Op(Kind k) : kind(k) {}

    Kind kind;
    bool accumulate = false;           //!< GatherMulAcc
    RNSPoly *outPoly = nullptr;        //!< written polynomial
    const RNSPoly *aPoly = nullptr;    //!< first input
    const RNSPoly *bPoly = nullptr;    //!< second input / key
    LimbPartition *out = nullptr;
    const LimbPartition *a = nullptr;
    const LimbPartition *b = nullptr;
    const u32 *perm = nullptr;         //!< automorphism gather
    std::vector<u64> s0, s1;           //!< per-limb scalar constants
    ExtScratch ext;                    //!< per-limb host scratch
    ExtFixed fixed;                    //!< shared fixed source
    u64 srcPrime = 0;                  //!< SwitchModulusExt

    bool readsOut() const
    {
        switch (kind) {
        case Kind::MulAdd:
        case Kind::Add:
        case Kind::Sub:
        case Kind::ScalarMul:
            return true;
        case Kind::GatherMulAcc:
            return accumulate;
        default:
            return false;
        }
    }

    /** Per-limb integer-op model, matching the standalone kernels. */
    u64
    intOpsPerLimb(std::size_t n, u32 logN) const
    {
        switch (kind) {
        case Kind::Mul: return 5 * n;
        case Kind::MulAdd: return 6 * n;
        case Kind::Add:
        case Kind::Sub: return n;
        case Kind::ScalarMul: return 3 * n;
        case Kind::Gather: return 0;
        case Kind::GatherMulAcc: return accumulate ? 6 * n : 5 * n;
        case Kind::SwitchModulusExt: return 2 * n;
        case Kind::NttExt: return 5 * n * logN;
        case Kind::SubScalarMulExt: return 4 * n;
        }
        return 0;
    }
};

FusedChain::FusedChain(const Context &ctx) : ctx_(&ctx) {}

FusedChain::~FusedChain()
{
    // A chain destroyed with recorded ops was never run(): the caller
    // dropped a kernel sequence on the floor (early return, missing
    // trailing .run()). Catch the misuse here, where the bug is.
    FIDES_ASSERT(ops_.empty());
}

namespace
{

/** Executes one recorded op on limb @p i. @p shape supplies the
 *  chain's position -> prime mapping for the external-scratch ops. */
inline void
runOpOnLimb(const Context &ctx, const FusedChain::Op &op,
            const LimbPartition &shape, std::size_t i, std::size_t n)
{
    using Kind = FusedChain::Op::Kind;
    switch (op.kind) {
    case Kind::Mul: {
        const Modulus &m = ctx.prime((*op.out)[i].primeIdx()).mod;
        mulSpan(ctx, (*op.out)[i].write(), (*op.a)[i].read(),
                (*op.b)[i].read(), n, m);
        break;
    }
    case Kind::MulAdd: {
        const Modulus &m = ctx.prime((*op.out)[i].primeIdx()).mod;
        mulAddSpan(ctx, (*op.out)[i].write(), (*op.a)[i].read(),
                   (*op.b)[i].read(), n, m);
        break;
    }
    case Kind::Add: {
        const u64 p = ctx.prime((*op.out)[i].primeIdx()).value();
        u64 *x = (*op.out)[i].write();
        const u64 *y = (*op.b)[i].read();
        for (std::size_t j = 0; j < n; ++j)
            x[j] = addMod(x[j], y[j], p);
        break;
    }
    case Kind::Sub: {
        const u64 p = ctx.prime((*op.out)[i].primeIdx()).value();
        u64 *x = (*op.out)[i].write();
        const u64 *y = (*op.b)[i].read();
        for (std::size_t j = 0; j < n; ++j)
            x[j] = subMod(x[j], y[j], p);
        break;
    }
    case Kind::ScalarMul: {
        const u64 p = ctx.prime((*op.out)[i].primeIdx()).value();
        const u64 w = op.s0[i];
        const u64 ws = shoupPrecompute(w, p);
        u64 *x = (*op.out)[i].write();
        for (std::size_t j = 0; j < n; ++j)
            x[j] = mulModShoup(x[j], w, ws, p);
        break;
    }
    case Kind::Gather: {
        const u64 *src = (*op.a)[i].read();
        u64 *dst = (*op.out)[i].write();
        for (std::size_t j = 0; j < n; ++j)
            dst[j] = src[op.perm[j]];
        break;
    }
    case Kind::GatherMulAcc: {
        // Limb of global prime gi in the full-basis key: q-limb gi
        // sits at position gi, special limb k at L+1+k -- both equal
        // the global index, so the key is indexed by gi directly.
        const u32 gi = (*op.out)[i].primeIdx();
        const Modulus &m = ctx.prime(gi).mod;
        const u64 *kp = (*op.b)[gi].read();
        const u64 *s = (*op.a)[i].read();
        u64 *x = (*op.out)[i].write();
        const bool barrett = ctx.modMulKind() == ModMulKind::Barrett;
        const u32 *pm = op.perm;
        for (std::size_t j = 0; j < n; ++j) {
            const u64 sj = pm ? s[pm[j]] : s[j];
            const u64 prod = barrett ? mulModBarrett(sj, kp[j], m)
                                     : mulModNaive(sj, kp[j], m.value);
            x[j] = op.accumulate ? addMod(x[j], prod, m.value) : prod;
        }
        break;
    }
    case Kind::SwitchModulusExt:
        switchModulusLimb(ctx, op.fixed->data(), op.srcPrime,
                          (*op.ext)[i].data(), shape[i].primeIdx());
        break;
    case Kind::NttExt:
        nttLimb(ctx, (*op.ext)[i].data(), shape[i].primeIdx(),
                shape.size());
        break;
    case Kind::SubScalarMulExt: {
        const u64 p = ctx.prime((*op.out)[i].primeIdx()).value();
        const u64 w = op.s0[i];
        const u64 ws = op.s1[i];
        const u64 *x = (*op.a)[i].read();
        const u64 *t = (*op.ext)[i].data();
        u64 *o = (*op.out)[i].write();
        for (std::size_t j = 0; j < n; ++j)
            o[j] = mulModShoup(subMod(x[j], t[j], p), w, ws, p);
        break;
    }
    }
}

/** Unfused per-op traffic (words per limb), matching the standalone
 *  kernels of the no-fusion backend. */
inline std::pair<u64, u64>
unfusedTraffic(const FusedChain::Op &op)
{
    using Kind = FusedChain::Op::Kind;
    switch (op.kind) {
    case Kind::Mul: return {2, 1};
    case Kind::MulAdd: return {3, 1};
    case Kind::Add:
    case Kind::Sub: return {2, 1};
    case Kind::ScalarMul: return {1, 1};
    case Kind::Gather: return {1, 1};
    case Kind::GatherMulAcc:
        return {op.accumulate ? 3u : 2u, 1};
    case Kind::SwitchModulusExt: return {1, 1};
    case Kind::NttExt: return {2, 2};
    case Kind::SubScalarMulExt: return {2, 1};
    }
    return {0, 0};
}

} // namespace

FusedChain &
FusedChain::mul(RNSPoly &out, const RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() <= a.numLimbs() &&
                 out.numLimbs() <= b.numLimbs());
    out.setFormat(Format::Eval);
    Op op{Op::Kind::Mul};
    op.outPoly = &out;
    op.aPoly = &a;
    op.bPoly = &b;
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::mulAdd(RNSPoly &acc, const RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.format() == Format::Eval &&
                 b.format() == Format::Eval);
    FIDES_ASSERT(acc.numLimbs() <= a.numLimbs() &&
                 acc.numLimbs() <= b.numLimbs());
    Op op{Op::Kind::MulAdd};
    op.outPoly = &acc;
    op.aPoly = &a;
    op.bPoly = &b;
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::add(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    Op op{Op::Kind::Add};
    op.outPoly = &a;
    op.bPoly = &b;
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::sub(RNSPoly &a, const RNSPoly &b)
{
    FIDES_ASSERT(a.numLimbs() <= b.numLimbs());
    Op op{Op::Kind::Sub};
    op.outPoly = &a;
    op.bPoly = &b;
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::scalarMul(RNSPoly &a, std::vector<u64> scalar)
{
    FIDES_ASSERT(scalar.size() >= a.numLimbs());
    Op op{Op::Kind::ScalarMul};
    op.outPoly = &a;
    op.s0 = std::move(scalar);
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::gather(RNSPoly &out, const RNSPoly &in,
                   const std::vector<u32> &perm)
{
    FIDES_ASSERT(in.format() == Format::Eval);
    FIDES_ASSERT(out.numLimbs() == in.numLimbs());
    out.setFormat(Format::Eval);
    Op op{Op::Kind::Gather};
    op.outPoly = &out;
    op.aPoly = &in;
    op.perm = perm.data(); // Context's automorphism cache, node-stable
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::gatherMulAcc(RNSPoly &acc, const RNSPoly &src,
                         const RNSPoly &key,
                         const std::vector<u32> *perm, bool accumulate)
{
    FIDES_ASSERT(src.format() == Format::Eval);
    FIDES_ASSERT(acc.numLimbs() <= src.numLimbs());
    Op op{Op::Kind::GatherMulAcc};
    op.accumulate = accumulate;
    op.outPoly = &acc;
    op.aPoly = &src;
    op.bPoly = &key;
    op.perm = perm ? perm->data() : nullptr;
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::switchModulusExt(ExtScratch dst, ExtFixed src,
                             u64 srcPrime)
{
    Op op{Op::Kind::SwitchModulusExt};
    op.ext = std::move(dst);
    op.fixed = std::move(src);
    op.srcPrime = srcPrime;
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::nttExt(ExtScratch buf)
{
    Op op{Op::Kind::NttExt};
    op.ext = std::move(buf);
    ops_.push_back(std::move(op));
    return *this;
}

FusedChain &
FusedChain::subScalarMulExt(RNSPoly &out, const RNSPoly &x,
                            ExtScratch t, std::vector<u64> w,
                            std::vector<u64> wShoup)
{
    FIDES_ASSERT(out.numLimbs() <= x.numLimbs());
    Op op{Op::Kind::SubScalarMulExt};
    op.outPoly = &out;
    op.aPoly = &x;
    op.ext = std::move(t);
    op.s0 = std::move(w);
    op.s1 = std::move(wShoup);
    ops_.push_back(std::move(op));
    return *this;
}

void
FusedChain::run(const std::vector<Event> &extraWaits)
{
    if (ops_.empty())
        return;
    check::ScopedLabel lbl("fused_chain");
    const Context &ctx = *ctx_;
    const std::size_t n = ctx.degree();
    const u32 logN = ctx.logDegree();

    // Resolve partitions now: the body must never touch an RNSPoly
    // (stack object), only its heap-stable partition.
    for (Op &op : ops_) {
        if (op.outPoly)
            op.out = &op.outPoly->partition();
        if (op.aPoly)
            op.a = &op.aPoly->partition();
        if (op.bPoly)
            op.b = &op.bPoly->partition();
    }

    // The chain's shape -- limb count and position -> prime mapping --
    // comes from the first written polynomial.
    const RNSPoly *shapePoly = nullptr;
    for (const Op &op : ops_) {
        if (op.outPoly) {
            shapePoly = op.outPoly;
            break;
        }
    }
    FIDES_ASSERT(shapePoly != nullptr);
    const LimbPartition *shape = &shapePoly->partition();
    const std::size_t numLimbs = shape->size();
    // Every written polynomial must span the chain's shape exactly:
    // a smaller output would silently truncate the ops after it, a
    // larger one would be left partially unwritten.
    for (const Op &op : ops_)
        FIDES_ASSERT(!op.out || op.out->size() == numLimbs);
    auto primeAt = [shape](std::size_t i) {
        return (*shape)[i].primeIdx();
    };
    // Ext-only ops carry no Dep on the shape polynomial, so their
    // queued bodies hold this keep-alive to pin the prime mapping.
    auto keepShape = shapePoly->partShared();

    if (!ctx.fusionEnabled()) {
        // Unfused backend: one logical kernel per recorded op, with
        // the per-op traffic of the standalone kernels. Polynomial
        // hazards chain through the Dep events as usual; external
        // scratch has no Dep tracking, so ops touching it are chained
        // serially through their recorded events (the structure of
        // the pre-fusion Rescale/ModDown pipelines).
        std::vector<Event> pending = extraWaits;
        for (std::size_t k = 0; k < ops_.size(); ++k) {
            // ops_ outlives the queued bodies: run() is called once
            // and the chain may not be reused, so moving the op list
            // into a shared_ptr keeps it alive for the last batch.
            auto ops = std::make_shared<const std::vector<Op>>(
                std::vector<Op>(1, ops_[k]));
            const Op &op = ops_[k];
            auto [r, w] = unfusedTraffic(op);
            std::vector<Dep> deps;
            if (op.outPoly)
                deps.push_back(wr(*op.outPoly));
            if (op.aPoly)
                deps.push_back(rd(*op.aPoly));
            if (op.bPoly) {
                if (op.kind == Op::Kind::GatherMulAcc)
                    deps.push_back(rdWhole(*op.bPoly));
                else
                    deps.push_back(rd(*op.bPoly));
            }
            const bool touchesExt = op.ext || op.fixed;
            std::vector<Event> recorded;
            forBatches(ctx, numLimbs, r * n * kWord, w * n * kWord,
                       op.intOpsPerLimb(n, logN),
                       [&ctx, ops, shape, keepShape, n](std::size_t lo,
                                                        std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    runOpOnLimb(ctx, (*ops)[0], *shape, i, n);
            }, primeAt, deps, touchesExt ? pending : extraWaits,
               touchesExt ? &recorded : nullptr);
            if (touchesExt && !recorded.empty())
                pending = std::move(recorded);
        }
        ops_.clear();
        return;
    }

    // Fused submission: ONE logical kernel for the whole chain.
    //
    // Counters: integer ops are summed over the chain; memory traffic
    // is single-pass -- each distinct operand is counted once (reads
    // only when first touched as a read: an operand produced earlier
    // in the chain, or chain-internal scratch, stays on-chip).
    u64 intOps = 0;
    u64 readsPerLimb = 0, writesPerLimb = 0;
    std::vector<const void *> written, readCounted;
    auto seen = [](const std::vector<const void *> &v, const void *p) {
        for (const void *q : v)
            if (q == p)
                return true;
        return false;
    };
    auto countRead = [&](const void *slot) {
        if (slot && !seen(written, slot) && !seen(readCounted, slot)) {
            readCounted.push_back(slot);
            ++readsPerLimb;
        }
    };
    auto countWrite = [&](const void *slot, bool isScratch) {
        if (slot && !seen(written, slot)) {
            written.push_back(slot);
            if (!isScratch)
                ++writesPerLimb;
        }
    };
    for (const Op &op : ops_) {
        intOps += op.intOpsPerLimb(n, logN);
        countRead(op.a);
        countRead(op.b);
        countRead(op.fixed.get());
        if (op.kind == Op::Kind::NttExt ||
            op.kind == Op::Kind::SubScalarMulExt)
            countRead(op.ext.get());
        if (op.readsOut())
            countRead(op.out);
        if (op.out)
            countWrite(op.out, false);
        if (op.ext && op.kind != Op::Kind::SubScalarMulExt)
            countWrite(op.ext.get(), true);
    }

    // One Dep per distinct polynomial: Write wherever the chain
    // writes it (Write hazards cover read-modify-write), Read
    // otherwise; key material is a whole-poly read.
    std::vector<Dep> deps;
    auto depFor = [&deps](const RNSPoly *p) -> Dep * {
        for (Dep &d : deps)
            if (d.poly == p)
                return &d;
        return nullptr;
    };
    for (const Op &op : ops_) {
        if (op.outPoly) {
            if (Dep *d = depFor(op.outPoly))
                d->mode = Access::Write;
            else
                deps.push_back(wr(*op.outPoly));
        }
        if (op.aPoly && !depFor(op.aPoly))
            deps.push_back(rd(*op.aPoly));
        if (op.bPoly && !depFor(op.bPoly)) {
            if (op.kind == Op::Kind::GatherMulAcc)
                deps.push_back(rdWhole(*op.bPoly));
            else
                deps.push_back(rd(*op.bPoly));
        }
    }

    auto ops =
        std::make_shared<const std::vector<Op>>(std::move(ops_));
    forBatches(ctx, numLimbs, readsPerLimb * n * kWord,
               writesPerLimb * n * kWord, intOps,
               [&ctx, ops, shape, keepShape, n](std::size_t lo,
                                                std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            for (const Op &op : *ops)
                runOpOnLimb(ctx, op, *shape, i, n);
    }, primeAt, deps, extraWaits);
    ops_.clear();
}

} // namespace fideslib::ckks::kernels
