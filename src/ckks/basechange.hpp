/**
 * @file
 * RNS basis-change operations (paper Section III-F3):
 *
 *  - convert(): the fast base conversion of Equation (1), a limb-wise
 *    scaling by (S/s_i)^{-1} followed by a modular matrix-matrix
 *    product accumulated in 128 bits and reduced once per output.
 *  - modUpDigit(): digit decomposition + base extension to Q_l * P.
 *  - modDown(): divide by P after the key-switch inner product, with
 *    the paper's ModDown NTT fusion.
 *  - rescale(): drop the top limb and scale by q_l^{-1}, with the
 *    paper's Rescale fusion (SwitchModulus prologue + combined
 *    subtract/scale epilogue around the NTT).
 *  - modRaise(): bootstrap's Q_0 -> Q_L coefficient lift.
 */

#pragma once

#include "ckks/rnspoly.hpp"

namespace fideslib::ckks
{

/**
 * Fast base conversion: reads the coefficient-format source limbs
 * (src[i], modulo tables.sourceIdx[i]) and writes each target limb
 * (dst[t], modulo tables.targetIdx[t]). Output is exact up to the
 * standard small multiple of the source modulus.
 */
void convert(const Context &ctx, const std::vector<const u64 *> &src,
             const ConvTables &tables, const std::vector<u64 *> &dst);

/**
 * ModUp of one key-switching digit: extracts the digit's limbs from
 * the coefficient-format polynomial @p coeffPoly (level l), base-
 * extends them to the full Q_l * P basis, and returns the result in
 * evaluation form.
 */
RNSPoly modUpDigit(const RNSPoly &coeffPoly, u32 digit);

/**
 * ModDown in place: divides the raised polynomial (eval format with
 * special limbs) by P and drops the special limbs.
 */
void modDown(RNSPoly &a);

/**
 * Rescale in place: drops the top limb l and scales the remaining
 * limbs by q_l^{-1} (eval format).
 */
void rescale(RNSPoly &a);

/**
 * Bootstrap ModRaise: reinterprets the (coeff-format, level-0) input
 * modulo every prime of the target level using the centered lift.
 * Returns a coeff-format polynomial at @p newLevel.
 */
RNSPoly modRaise(const RNSPoly &a, u32 newLevel);

} // namespace fideslib::ckks
