/**
 * @file
 * Encrypted logistic-regression training (the paper's Table VII
 * workload, following Han et al. [51]): mini-batch gradient descent
 * where each ciphertext packs `batch` samples x `features` values
 * (features padded to a power of two, 25 -> 32 in the paper), the
 * per-sample inner products are computed with rotate-and-add feature
 * folds, the sigmoid is the standard degree-3 polynomial
 * approximation, and the gradient is accumulated with sample folds.
 *
 * The proprietary 45,000-sample loan-eligibility dataset is replaced
 * by a deterministic synthetic generator with the same shape
 * (DESIGN.md substitution #6).
 */

#pragma once

#include "ckks/bootstrap.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"

namespace fideslib::ckks::lr
{

/** Labeled dataset; y in {-1, +1}. */
struct Dataset
{
    std::vector<std::vector<double>> x; //!< samples x features
    std::vector<double> y;
    u32 features = 0;
};

/** Deterministic synthetic loan-eligibility data (same shape as the
 *  paper's 45,000 x 25 dataset). */
Dataset generateLoanDataset(std::size_t samples, u32 features,
                            u64 seed);

/** Degree-3 sigmoid approximation sigma(x) on [-8, 8] (Han et al.). */
double sigmoid3(double x);

/** One plain mini-batch gradient step with the same approximations
 *  the encrypted path uses (the accuracy oracle). */
std::vector<double> plainStep(const Dataset &data, std::size_t offset,
                              std::size_t batch,
                              const std::vector<double> &w,
                              double gamma);

/** Classification accuracy of weights w on the dataset. */
double accuracy(const Dataset &data, const std::vector<double> &w);

/** Encrypted mini-batch logistic-regression trainer. */
class Trainer
{
  public:
    /**
     * @param batch samples per ciphertext; batch * paddedFeatures
     *        must equal the slot count used for encryption.
     */
    Trainer(const Evaluator &eval, u32 features, u32 batch);

    u32 paddedFeatures() const { return padded_; }
    u32 slots() const { return padded_ * batch_; }

    /** Rotation indices iterate() needs. */
    std::vector<i64> requiredRotations() const;

    /** Packs and encrypts z_i = y_i * x_i for one mini-batch. */
    Ciphertext encryptBatch(const Encryptor &encryptor,
                            const Dataset &data, std::size_t offset,
                            u32 level) const;

    /** Encrypts the weight vector replicated across sample rows. */
    Ciphertext encryptWeights(const Encryptor &encryptor,
                              const std::vector<double> &w,
                              u32 level) const;

    /** Extracts the weight vector from a decrypted weights pt. */
    std::vector<double> extractWeights(const Encoder &enc,
                                       const Plaintext &pt) const;

    /**
     * One encrypted gradient-descent step:
     * w <- w + (gamma/batch) * sum_i sigmoid3(-w . z_i) z_i.
     * Consumes 7 levels; the returned weights are canonical.
     */
    Ciphertext iterate(const Ciphertext &w, const Ciphertext &zBatch,
                       double gamma) const;

    /** Multiplicative depth of one iterate() call. */
    static u32 iterationDepth() { return 7; }

  private:
    const Evaluator &eval_;
    u32 features_;
    u32 padded_;
    u32 batch_;
};

} // namespace fideslib::ckks::lr
