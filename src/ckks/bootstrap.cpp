#include "ckks/bootstrap.hpp"

#include <cmath>
#include <cstring>
#include <numbers>

#include <set>

#include "ckks/basechange.hpp"
#include "ckks/chebyshev.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/graph.hpp"
#include "ckks/kernels.hpp"
#include "core/logging.hpp"

namespace fideslib::ckks
{

Bootstrapper::Bootstrapper(const Evaluator &eval,
                           const BootstrapConfig &cfg)
    : eval_(eval), cfg_(cfg)
{
    const Context &ctx = eval.context();
    const std::size_t n = ctx.degree();
    FIDES_ASSERT(cfg_.slots > 0 && cfg_.slots <= n / 2);
    FIDES_ASSERT(isPowerOfTwo(cfg_.slots));
    gap_ = static_cast<u32>((n / 2) / cfg_.slots);

    // Effective range of |t'| / q0 after the trace: the base bound K
    // on |I| grows by ~sqrt(gap) when gap automorphism images of I
    // are summed (random-sign accumulation).
    const bool sparse = ctx.params().secretHammingWeight > 0;
    double base = sparse ? cfg_.kBase : cfg_.kUniform;
    if (!sparse) {
        warn("bootstrapping with a dense ternary secret: range K=%g "
             "requires a large Chebyshev degree",
             base);
    }
    // Tail bound: the SubSum trace adds `gap` signed images of I, so
    // the sum concentrates around sqrt(gap) * |I| but its tail over N
    // coefficients reaches several times that; a 3x factor keeps the
    // Chebyshev argument safely inside [-1, 1] (outside, T_k grows
    // like cosh and the pipeline diverges).
    keff_ = base
          * std::max(1.0, 3.0 * std::sqrt(static_cast<double>(gap_)));

    // Double-angle count: bring the cosine argument down to a few
    // oscillations so the Chebyshev degree stays moderate.
    doubleAngles_ = cfg_.doubleAngles;
    if (doubleAngles_ == 0) {
        doubleAngles_ = 3;
        while ((keff_ / static_cast<double>(1u << doubleAngles_)) > 4.0
               && doubleAngles_ < 9) {
            ++doubleAngles_;
        }
    }

    const double r = static_cast<double>(1u << doubleAngles_);
    const double kf = keff_;
    auto target = [kf, r](double y) {
        return std::cos((2.0 * std::numbers::pi * kf * y
                         - std::numbers::pi / 2.0)
                        / r);
    };
    chebDegree_ = chebyshevDegreeFor(target, cfg_.targetError, 16);
    chebCoeffs_ = chebyshevInterpolate(target, chebDegree_);

    // Linear-transform stages.
    c2s_ = buildC2SStages(cfg_.slots, cfg_.levelBudgetC2S);
    s2c_ = buildS2CStages(cfg_.slots, cfg_.levelBudgetS2C);

    // Fold constants: CoeffToSlot divides by 2 Keff q0 / Delta (the
    // 1/2 pre-pays the conjugation split); SlotToCoeff multiplies by
    // q0 / (2 pi g Delta) to undo the sine slope and the trace factor.
    const long double q0 =
        static_cast<long double>(ctx.qMod(0).value);
    const long double delta = ctx.defaultScale();
    c2s_.front().scale(
        Cplx(delta / (2.0L * static_cast<long double>(keff_) * q0), 0));
    s2c_.front().scale(
        Cplx(q0 / (2.0L * std::numbers::pi_v<long double> *
                   static_cast<long double>(gap_) * delta),
             0));

    const u32 need = depth();
    if (need + 1 > ctx.maxLevel()) {
        fatal("bootstrap needs %u levels but the context has only %u "
              "(increase multDepth)",
              need, ctx.maxLevel());
    }

    // Everything the pipeline's call sequence depends on, folded into
    // the segment-plan keys: two Bootstrappers at the same level but
    // different slot counts / budgets / Chebyshev shapes would
    // otherwise collide on (op, level) and replay the wrong graph.
    u32 h = kernels::kPlanAuxSeed;
    h = kernels::planAuxMix(h, cfg_.slots);
    h = kernels::planAuxMix(h, cfg_.levelBudgetC2S);
    h = kernels::planAuxMix(h, cfg_.levelBudgetS2C);
    h = kernels::planAuxMix(h, doubleAngles_);
    h = kernels::planAuxMix(h, chebDegree_);
    u64 kbits;
    static_assert(sizeof(kbits) == sizeof(keff_));
    std::memcpy(&kbits, &keff_, sizeof(kbits));
    planTag_ = kernels::planAuxMix(h, kbits);
}

u32
Bootstrapper::depth() const
{
    return static_cast<u32>(c2s_.size()) + chebyshevDepth(chebDegree_)
         + doubleAngles_ + static_cast<u32>(s2c_.size());
}

u32
Bootstrapper::outputLevel() const
{
    return eval_.context().maxLevel() - depth();
}

std::vector<i64>
Bootstrapper::requiredRotations() const
{
    std::set<i64> rots;
    auto addAll = [&](const std::vector<DiagMatrix> &stages) {
        for (const auto &m : stages) {
            for (i64 k : fideslib::ckks::requiredRotations(m))
                rots.insert(k);
        }
    };
    addAll(c2s_);
    addAll(s2c_);
    for (u32 i = 0; (1u << i) < gap_; ++i)
        rots.insert(static_cast<i64>(cfg_.slots) << i);
    rots.erase(0);
    return {rots.begin(), rots.end()};
}

const EncodedDiagMatrix &
Bootstrapper::encodedStage(bool s2c, u32 idx, u32 level) const
{
    std::lock_guard<std::mutex> lock(*cacheMutex_);
    auto key = std::make_tuple(s2c, idx, level);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        const DiagMatrix &m = s2c ? s2c_[idx] : c2s_[idx];
        it = cache_
                 .emplace(key, encodeDiagMatrix(eval_, m, cfg_.slots,
                                                level))
                 .first;
    }
    return it->second;
}

void
Bootstrapper::prewarmStages(bool s2c, u32 entryLevel) const
{
    const std::size_t count = s2c ? s2c_.size() : c2s_.size();
    for (u32 s = 0; s < count; ++s)
        encodedStage(s2c, s, entryLevel - s);
}

Ciphertext
Bootstrapper::approxMod(const Ciphertext &y) const
{
    Ciphertext c = evalChebyshevSeries(eval_, y, chebCoeffs_);
    for (u32 i = 0; i < doubleAngles_; ++i) {
        Ciphertext sq = eval_.squareC(c);
        c = eval_.addC(sq, sq);
        eval_.addScalarInPlace(c, -1.0);
    }
    return c;
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct) const
{
    const Context &ctx = eval_.context();
    const std::size_t n = ctx.degree();
    FIDES_ASSERT(ct.slots == cfg_.slots);

    // 0. Consume remaining levels and normalize the scale to Delta.
    // With a spare level the adjustment is exact: multiply by 1 at
    // scale Delta * q_l / s_in, then rescale, landing on Delta up to
    // the 2^-50-ish rounding of the encoded scalar. (The canonical
    // level-scale chain can drift percent-level from Delta at deep
    // parameter sets, so this matters.)
    Ciphertext in = ct.clone();
    const long double delta = ctx.defaultScale();
    if (in.level() >= 1 &&
        std::fabs(in.scale / delta - 1.0L) > 1e-9L) {
        const u64 ql = ctx.qMod(in.level()).value;
        eval_.multiplyScalarInPlace(
            in, 1.0L,
            delta * static_cast<long double>(ql) / in.scale);
        eval_.rescaleInPlace(in);
        in.scale = delta;
    }
    eval_.levelReduceInPlace(in, 0);
    long double ratio = delta / in.scale;
    if (std::fabs(ratio - 1.0L) > 1e-9L) {
        u64 k = static_cast<u64>(ratio + 0.5L);
        if (k < 1)
            k = 1;
        std::vector<u64> scalar(1, 0);
        scalar[0] = k % ctx.qMod(0).value;
        kernels::scalarMulInto(in.c0, scalar);
        kernels::scalarMulInto(in.c1, scalar);
        in.scale *= static_cast<long double>(k);
        long double residual =
            std::fabs(in.scale / delta - 1.0L);
        if (residual > 1e-6L) {
            warn("bootstrap input scale adjusted with residual error "
                 "2^%.1f",
                 (double)std::log2((double)residual));
        }
        in.scale = delta; // the residual is now message error
    } else {
        in.scale = delta;
    }

    // 1. ModRaise both components to the top level.
    kernels::toCoeff(in.c0);
    kernels::toCoeff(in.c1);
    RNSPoly r0 = modRaise(in.c0, ctx.maxLevel());
    RNSPoly r1 = modRaise(in.c1, ctx.maxLevel());
    kernels::toEval(r0);
    kernels::toEval(r1);
    Ciphertext raised{std::move(r0), std::move(r1), delta, cfg_.slots,
                      ct.noiseBits};

    // 2. SubSum for sparse packing: project t onto the subring.
    for (u32 i = 0; (1u << i) < gap_; ++i) {
        Ciphertext rot =
            eval_.rotate(raised, static_cast<i64>(cfg_.slots) << i);
        eval_.addInPlace(raised, rot);
    }

    // 3. CoeffToSlot stages -- one composite segment plan. The
    // plaintext stages are pre-warmed OUTSIDE the scope: encoding
    // launches kernels, and a lazy encode inside a capture would bake
    // one-time work into the plan (then replays would skip the live
    // encode a cold cache still needs).
    Ciphertext enc = std::move(raised);
    {
        prewarmStages(false, enc.level());
        kernels::PlanScope seg(ctx, kernels::PlanOp::CoeffToSlotSeg,
                               enc.level(), planTag_);
        for (u32 s = 0; s < c2s_.size(); ++s)
            enc = applyEncoded(eval_, enc,
                               encodedStage(false, s, enc.level()));
    }

    // 4-6. Conjugation split, ApproxModEval on both parts, and the
    // recombine -- together one EvalMod segment (by far the deepest
    // stretch of the pipeline, all of it shape-determined by the
    // Chebyshev coefficients baked into planTag_).
    Ciphertext w = [&] {
        kernels::PlanScope seg(ctx, kernels::PlanOp::EvalModSeg,
                               enc.level(), planTag_);

        // Re via conjugate-add (the 1/2 was folded into CoeffToSlot),
        // Im via an exact monomial multiply.
        Ciphertext conj = eval_.conjugate(enc);
        Ciphertext yRe = eval_.add(enc, conj);
        Ciphertext yIm = eval_.sub(enc, conj);
        eval_.multiplyByMonomialInPlace(yIm, 3 * n / 2); // times -i

        Ciphertext mRe = approxMod(yRe);
        Ciphertext mIm = approxMod(yIm);

        // Recombine: w = mRe + i * mIm.
        eval_.multiplyByMonomialInPlace(mIm, n / 2); // times +i
        return eval_.addC(mRe, mIm);
    }();

    // 7. SlotToCoeff stages -- the third segment.
    {
        prewarmStages(true, w.level());
        kernels::PlanScope seg(ctx, kernels::PlanOp::SlotToCoeffSeg,
                               w.level(), planTag_);
        for (u32 s = 0; s < s2c_.size(); ++s)
            w = applyEncoded(eval_, w,
                             encodedStage(true, s, w.level()));
    }

    // The pipeline's constants assumed input scale Delta; the output
    // is canonical at its level and re-encrypts the original message.
    w.slots = cfg_.slots;
    w.noiseBits = freshNoiseBits(ctx) + 10.0;
    return w;
}

} // namespace fideslib::ckks
