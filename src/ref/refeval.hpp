/**
 * @file
 * Reference (naive) server-side evaluator: the OpenFHE stand-in.
 *
 * Every operation is implemented with straightforward per-coefficient
 * loops, `%`-based modular arithmetic, fresh allocations, no kernel
 * fusion, no limb batching and no device accounting. It plays two
 * roles from the paper's evaluation:
 *   - the integration-test oracle: results must be bit-identical to
 *     the optimized backend (both compute exact modular functions);
 *   - the CPU baseline column of every benchmark table.
 *
 * Operations reuse the Context's precomputed constants (primes, NTT
 * roots, CRT factors), which are validated independently.
 */

#pragma once

#include "ckks/ciphertext.hpp"
#include "ckks/keys.hpp"

namespace fideslib::ref
{

using ckks::Ciphertext;
using ckks::Context;
using ckks::EvalKey;
using ckks::Format;
using ckks::Plaintext;
using ckks::RNSPoly;

/** Naive forward/inverse NTT over every limb. */
void toEval(RNSPoly &a);
void toCoeff(RNSPoly &a);

/** HAdd. */
Ciphertext add(const Ciphertext &a, const Ciphertext &b);
/** PtAdd. */
Ciphertext addPlain(const Ciphertext &a, const Plaintext &p);
/** ScalarAdd (naive path: encodes then adds limb-wise). */
Ciphertext addScalar(const Context &ctx, const Ciphertext &a, double c);
/** PtMult. */
Ciphertext multiplyPlain(const Ciphertext &a, const Plaintext &p);
/** ScalarMult. */
Ciphertext multiplyScalar(const Context &ctx, const Ciphertext &a,
                          double c);
/** HMult with relinearization. */
Ciphertext multiply(const Ciphertext &a, const Ciphertext &b,
                    const EvalKey &relin);
/** Rescale. */
Ciphertext rescale(const Ciphertext &a);
/** HRotate. */
Ciphertext rotate(const Ciphertext &a, i64 k, const EvalKey &key);
/** HConjugate. */
Ciphertext conjugate(const Ciphertext &a, const EvalKey &key);

/** Naive hybrid key switch of one polynomial. */
std::pair<RNSPoly, RNSPoly> keySwitch(const RNSPoly &dEval,
                                      const EvalKey &key);

} // namespace fideslib::ref
