#include "ref/refeval.hpp"

#include <cmath>
#include <cstring>
#include <functional>

#include "ckks/encoder.hpp"
#include "core/logging.hpp"
#include "ref/refntt.hpp"

namespace fideslib::ref
{

namespace
{

/** Signed residues of round(c * scale) per limb of @p shape. */
std::vector<u64>
scalarResidues(const Context &ctx, const RNSPoly &shape, long double c,
               long double scale)
{
    ckks::Encoder enc(ctx);
    auto qRes = enc.scalarResidues(c, scale, shape.level(),
                                   shape.numSpecial());
    return qRes;
}

void
forEachLimb(RNSPoly &a,
            const std::function<void(std::size_t, const Modulus &,
                                     u64 *)> &fn)
{
    // The reference evaluator runs on the host thread: join on any
    // backend kernels still writing the operand (genuine host read).
    a.syncHost();
    const Context &ctx = a.context();
    for (std::size_t i = 0; i < a.numLimbs(); ++i)
        fn(i, ctx.prime(a.primeIdxAt(i)).mod, a.limb(i).data());
}

} // namespace

void
toEval(RNSPoly &a)
{
    FIDES_ASSERT(a.format() == Format::Coeff);
    const Context &ctx = a.context();
    const std::size_t n = ctx.degree();
    forEachLimb(a, [&](std::size_t i, const Modulus &m, u64 *x) {
        std::vector<u64> tmp(x, x + n);
        refNttForward(tmp, m, ctx.prime(a.primeIdxAt(i)).ntt->psi());
        std::memcpy(x, tmp.data(), n * sizeof(u64));
    });
    a.setFormat(Format::Eval);
}

void
toCoeff(RNSPoly &a)
{
    FIDES_ASSERT(a.format() == Format::Eval);
    const Context &ctx = a.context();
    const std::size_t n = ctx.degree();
    forEachLimb(a, [&](std::size_t i, const Modulus &m, u64 *x) {
        std::vector<u64> tmp(x, x + n);
        refNttInverse(tmp, m, ctx.prime(a.primeIdxAt(i)).ntt->psi());
        std::memcpy(x, tmp.data(), n * sizeof(u64));
    });
    a.setFormat(Format::Coeff);
}

namespace
{

RNSPoly
polyBinop(const RNSPoly &a, const RNSPoly &b,
          u64 (*op)(u64, u64, u64))
{
    // Host reads of possibly async-produced operands.
    a.syncHost();
    b.syncHost();
    const Context &ctx = a.context();
    const std::size_t n = ctx.degree();
    RNSPoly out(ctx, a.level(), a.format(), a.numSpecial());
    for (std::size_t i = 0; i < out.numLimbs(); ++i) {
        const u64 p = ctx.prime(out.primeIdxAt(i)).value();
        const u64 *x = a.limb(i).data();
        const u64 *y = b.limb(i).data();
        u64 *o = out.limb(i).data();
        for (std::size_t j = 0; j < n; ++j)
            o[j] = op(x[j], y[j], p);
    }
    return out;
}

u64
opAdd(u64 a, u64 b, u64 p)
{
    return addMod(a, b, p);
}

u64
opMul(u64 a, u64 b, u64 p)
{
    return mulModNaive(a, b, p);
}

} // namespace

Ciphertext
add(const Ciphertext &a, const Ciphertext &b)
{
    FIDES_ASSERT(a.level() == b.level());
    return Ciphertext{polyBinop(a.c0, b.c0, opAdd),
                      polyBinop(a.c1, b.c1, opAdd), a.scale, a.slots,
                      a.noiseBits};
}

Ciphertext
addPlain(const Ciphertext &a, const Plaintext &p)
{
    Ciphertext r = a.clone();
    r.c0 = polyBinop(a.c0, p.poly, opAdd);
    return r;
}

Ciphertext
addScalar(const Context &ctx, const Ciphertext &a, double c)
{
    auto res = scalarResidues(ctx, a.c0, c, a.scale);
    Ciphertext r = a.clone();
    const std::size_t n = ctx.degree();
    forEachLimb(r.c0, [&](std::size_t i, const Modulus &m, u64 *x) {
        for (std::size_t j = 0; j < n; ++j)
            x[j] = addMod(x[j], res[i], m.value);
    });
    return r;
}

Ciphertext
multiplyPlain(const Ciphertext &a, const Plaintext &p)
{
    Ciphertext r{polyBinop(a.c0, p.poly, opMul),
                 polyBinop(a.c1, p.poly, opMul), a.scale * p.scale,
                 a.slots, a.noiseBits};
    return r;
}

Ciphertext
multiplyScalar(const Context &ctx, const Ciphertext &a, double c)
{
    auto res = scalarResidues(ctx, a.c0, c, ctx.defaultScale());
    Ciphertext r = a.clone();
    const std::size_t n = ctx.degree();
    for (RNSPoly *poly : {&r.c0, &r.c1}) {
        forEachLimb(*poly,
                    [&](std::size_t i, const Modulus &m, u64 *x) {
            for (std::size_t j = 0; j < n; ++j)
                x[j] = mulModNaive(x[j], res[i], m.value);
        });
    }
    r.scale = a.scale * ctx.defaultScale();
    return r;
}

namespace
{

/** Naive fast base conversion (Eq. 1), per coefficient. */
void
refConvert(const Context &ctx, const std::vector<const u64 *> &src,
           const ckks::ConvTables &t, const std::vector<u64 *> &dst)
{
    const std::size_t n = ctx.degree();
    const std::size_t ns = src.size();
    const std::size_t nt = dst.size();
    std::vector<u64> scaled(ns);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < ns; ++i) {
            const u64 p = ctx.prime(t.sourceIdx[i]).value();
            scaled[i] = mulModNaive(src[i][j], t.sHatInv[i], p);
        }
        for (std::size_t d = 0; d < nt; ++d) {
            const Modulus &m = ctx.prime(t.targetIdx[d]).mod;
            u128 acc = 0;
            for (std::size_t i = 0; i < ns; ++i)
                acc += static_cast<u128>(scaled[i])
                     * t.sHatModT[i * nt + d];
            dst[d][j] = static_cast<u64>(acc % m.value);
        }
    }
}

RNSPoly
refModUpDigit(const RNSPoly &coeffPoly, u32 digit)
{
    coeffPoly.syncHost();
    const Context &ctx = coeffPoly.context();
    const u32 level = coeffPoly.level();
    const auto &t = ctx.modUpTables(level, digit);
    const std::size_t n = ctx.degree();

    RNSPoly out(ctx, level, Format::Coeff, ctx.numSpecial());
    std::vector<const u64 *> src;
    for (u32 gi : t.sourceIdx) {
        src.push_back(coeffPoly.limb(gi).data());
        std::memcpy(out.limb(gi).data(), coeffPoly.limb(gi).data(),
                    n * sizeof(u64));
    }
    std::vector<u64 *> dst;
    for (u32 gi : t.targetIdx) {
        std::size_t pos = gi <= level
                              ? gi
                              : level + 1 + (gi - (ctx.maxLevel() + 1));
        dst.push_back(out.limb(pos).data());
    }
    refConvert(ctx, src, t, dst);
    toEval(out);
    return out;
}

void
refModDown(RNSPoly &a)
{
    a.syncHost();
    const Context &ctx = a.context();
    const u32 level = a.level();
    const u32 K = ctx.numSpecial();
    const std::size_t n = ctx.degree();
    const auto &t = ctx.modDownTables(level);

    for (u32 k = 0; k < K; ++k) {
        std::vector<u64> tmp(a.limb(level + 1 + k).data(),
                             a.limb(level + 1 + k).data() + n);
        refNttInverse(tmp, ctx.pMod(k),
                      ctx.prime(ctx.specialIdx(k)).ntt->psi());
        std::memcpy(a.limb(level + 1 + k).data(), tmp.data(),
                    n * sizeof(u64));
    }

    std::vector<const u64 *> src;
    for (u32 k = 0; k < K; ++k)
        src.push_back(a.limb(level + 1 + k).data());
    std::vector<std::vector<u64>> conv(level + 1, std::vector<u64>(n));
    std::vector<u64 *> dst;
    for (u32 i = 0; i <= level; ++i)
        dst.push_back(conv[i].data());
    refConvert(ctx, src, t, dst);

    for (u32 i = 0; i <= level; ++i) {
        const Modulus &m = ctx.qMod(i);
        refNttForward(conv[i], m, ctx.prime(i).ntt->psi());
        u64 *x = a.limb(i).data();
        for (std::size_t j = 0; j < n; ++j) {
            x[j] = mulModNaive(subMod(x[j], conv[i][j], m.value),
                               ctx.pInvModQ(i), m.value);
        }
    }
    a.dropSpecialLimbs();
}

} // namespace

std::pair<RNSPoly, RNSPoly>
keySwitch(const RNSPoly &dEval, const EvalKey &key)
{
    const Context &ctx = dEval.context();
    const u32 level = dEval.level();
    const u32 L = ctx.maxLevel();
    const std::size_t n = ctx.degree();

    RNSPoly coeff = dEval.clone();
    toCoeff(coeff);

    RNSPoly acc0(ctx, level, Format::Eval, ctx.numSpecial());
    RNSPoly acc1(ctx, level, Format::Eval, ctx.numSpecial());
    acc0.setZero();
    acc1.setZero();
    for (u32 j = 0; j < ctx.numDigits(level); ++j) {
        // The key material was produced by the asynchronous backend.
        key.b[j].syncHost();
        key.a[j].syncHost();
        RNSPoly raised = refModUpDigit(coeff, j);
        for (std::size_t i = 0; i < acc0.numLimbs(); ++i) {
            const u32 gi = acc0.primeIdxAt(i);
            const Modulus &m = ctx.prime(gi).mod;
            const std::size_t keyPos =
                gi <= L ? gi : L + 1 + (gi - (L + 1));
            const u64 *kb = key.b[j].limb(keyPos).data();
            const u64 *ka = key.a[j].limb(keyPos).data();
            const u64 *s = raised.limb(i).data();
            u64 *x0 = acc0.limb(i).data();
            u64 *x1 = acc1.limb(i).data();
            for (std::size_t jj = 0; jj < n; ++jj) {
                x0[jj] = addMod(x0[jj],
                                mulModNaive(s[jj], kb[jj], m.value),
                                m.value);
                x1[jj] = addMod(x1[jj],
                                mulModNaive(s[jj], ka[jj], m.value),
                                m.value);
            }
        }
    }
    refModDown(acc0);
    refModDown(acc1);
    return {std::move(acc0), std::move(acc1)};
}

Ciphertext
multiply(const Ciphertext &a, const Ciphertext &b, const EvalKey &relin)
{
    FIDES_ASSERT(a.level() == b.level());
    RNSPoly d0 = polyBinop(a.c0, b.c0, opMul);
    RNSPoly d1 = polyBinop(a.c0, b.c1, opMul);
    RNSPoly d1b = polyBinop(a.c1, b.c0, opMul);
    d1 = polyBinop(d1, d1b, opAdd);
    RNSPoly d2 = polyBinop(a.c1, b.c1, opMul);

    auto [u0, u1] = keySwitch(d2, relin);
    d0 = polyBinop(d0, u0, opAdd);
    d1 = polyBinop(d1, u1, opAdd);
    return Ciphertext{std::move(d0), std::move(d1), a.scale * b.scale,
                      a.slots, a.noiseBits + b.noiseBits + 1.0};
}

Ciphertext
rescale(const Ciphertext &a)
{
    const Context &ctx = a.c0.context();
    const std::size_t n = ctx.degree();
    const u32 l = a.level();
    FIDES_ASSERT(l > 0);
    const u64 ql = ctx.qMod(l).value;

    Ciphertext r = a.clone();
    r.syncHost(); // the clone kernels run asynchronously
    for (RNSPoly *poly : {&r.c0, &r.c1}) {
        std::vector<u64> last(poly->limb(l).data(),
                              poly->limb(l).data() + n);
        refNttInverse(last, ctx.qMod(l), ctx.prime(l).ntt->psi());
        for (u32 i = 0; i < l; ++i) {
            const Modulus &m = ctx.qMod(i);
            std::vector<u64> tmp(n);
            const u64 half = ql >> 1;
            for (std::size_t j = 0; j < n; ++j) {
                // Centered SwitchModulus.
                u64 v = last[j];
                u64 r0 = v % m.value;
                if (v > half)
                    r0 = subMod(r0, ql % m.value, m.value);
                tmp[j] = r0;
            }
            refNttForward(tmp, m, ctx.prime(i).ntt->psi());
            u64 *x = poly->limb(i).data();
            const u64 inv = ctx.qlInvModQ(l, i);
            for (std::size_t j = 0; j < n; ++j) {
                x[j] = mulModNaive(subMod(x[j], tmp[j], m.value), inv,
                                   m.value);
            }
        }
        poly->dropLimb();
    }
    r.scale = a.scale / static_cast<long double>(ql);
    return r;
}

namespace
{

Ciphertext
applyGalois(const Ciphertext &a, u64 galois, const EvalKey &key)
{
    // Same operation order as the optimized backend (permute the
    // raised digits, inner-product, ModDown, then permute c0): the
    // automorphism commutes with decomposition, and matching the
    // order keeps the two backends bit-identical.
    const Context &ctx = a.c0.context();
    const auto &perm = ctx.automorphPerm(galois);
    const std::size_t n = ctx.degree();
    const u32 level = a.level();
    const u32 L = ctx.maxLevel();

    RNSPoly coeff = a.c1.clone();
    toCoeff(coeff);

    RNSPoly acc0(ctx, level, Format::Eval, ctx.numSpecial());
    RNSPoly acc1(ctx, level, Format::Eval, ctx.numSpecial());
    acc0.setZero();
    acc1.setZero();
    for (u32 j = 0; j < ctx.numDigits(level); ++j) {
        key.b[j].syncHost();
        key.a[j].syncHost();
        RNSPoly raised = refModUpDigit(coeff, j);
        for (std::size_t i = 0; i < acc0.numLimbs(); ++i) {
            const u32 gi = acc0.primeIdxAt(i);
            const Modulus &m = ctx.prime(gi).mod;
            const std::size_t keyPos =
                gi <= L ? gi : L + 1 + (gi - (L + 1));
            const u64 *kb = key.b[j].limb(keyPos).data();
            const u64 *ka = key.a[j].limb(keyPos).data();
            const u64 *s = raised.limb(i).data();
            u64 *x0 = acc0.limb(i).data();
            u64 *x1 = acc1.limb(i).data();
            for (std::size_t jj = 0; jj < n; ++jj) {
                u64 sp = s[perm[jj]];
                x0[jj] = addMod(x0[jj],
                                mulModNaive(sp, kb[jj], m.value),
                                m.value);
                x1[jj] = addMod(x1[jj],
                                mulModNaive(sp, ka[jj], m.value),
                                m.value);
            }
        }
    }
    refModDown(acc0);
    refModDown(acc1);

    RNSPoly c0(ctx, level, Format::Eval);
    a.c0.syncHost(); // host read of the backend-produced input
    for (std::size_t i = 0; i <= level; ++i) {
        const Modulus &m = ctx.qMod(i);
        const u64 *s0 = a.c0.limb(i).data();
        const u64 *u0 = acc0.limb(i).data();
        u64 *d0 = c0.limb(i).data();
        for (std::size_t j = 0; j < n; ++j)
            d0[j] = addMod(s0[perm[j]], u0[j], m.value);
    }
    return Ciphertext{std::move(c0), std::move(acc1), a.scale, a.slots,
                      a.noiseBits + 0.5};
}

} // namespace

Ciphertext
rotate(const Ciphertext &a, i64 k, const EvalKey &key)
{
    const Context &ctx = a.c0.context();
    return applyGalois(a, ctx.rotationGaloisElt(k), key);
}

Ciphertext
conjugate(const Ciphertext &a, const EvalKey &key)
{
    const Context &ctx = a.c0.context();
    return applyGalois(a, ctx.conjugateGaloisElt(), key);
}

} // namespace fideslib::ref
