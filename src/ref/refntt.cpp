#include "ref/refntt.hpp"

#include "core/logging.hpp"

namespace fideslib::ref
{

namespace
{

u64
naivePow(u64 b, u64 e, u64 p)
{
    u64 r = 1;
    b %= p;
    while (e) {
        if (e & 1)
            r = mulModNaive(r, b, p);
        b = mulModNaive(b, b, p);
        e >>= 1;
    }
    return r;
}

/**
 * In-place iterative cyclic FFT over Z_p, decimation in time with an
 * explicit input bit-reversal. @p w is a primitive n-th root. The
 * output is in natural order: X[k] = sum_j a_j w^(jk).
 */
void
cyclicFft(std::vector<u64> &a, const Modulus &m, u64 w)
{
    const std::size_t n = a.size();
    const u32 logN = log2Floor(n);
    const u64 p = m.value;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = bitReverse(i, logN);
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
        u64 wl = naivePow(w, n / len, p);
        for (std::size_t i = 0; i < n; i += len) {
            u64 tw = 1;
            for (std::size_t j = 0; j < len / 2; ++j) {
                u64 u = a[i + j];
                u64 v = mulModNaive(a[i + j + len / 2], tw, p);
                a[i + j] = addMod(u, v, p);
                a[i + j + len / 2] = subMod(u, v, p);
                tw = mulModNaive(tw, wl, p);
            }
        }
    }
}

} // namespace

void
refNttForward(std::vector<u64> &a, const Modulus &m, u64 psi)
{
    const std::size_t n = a.size();
    const u32 logN = log2Floor(n);
    const u64 p = m.value;

    // Twist by psi^j to turn the negacyclic transform cyclic.
    u64 tw = 1;
    for (std::size_t j = 0; j < n; ++j) {
        a[j] = mulModNaive(a[j], tw, p);
        tw = mulModNaive(tw, psi, p);
    }
    // Cyclic FFT with w = psi^2; output X[k] = A(psi^(2k+1)).
    cyclicFft(a, m, mulModNaive(psi, psi, p));
    // Reorder natural k to the library's bit-reversed convention:
    // out[i] holds the evaluation at psi^(2*rev(i)+1) = X[rev(i)].
    std::vector<u64> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[bitReverse(i, logN)];
    a.swap(out);
}

void
refNttInverse(std::vector<u64> &a, const Modulus &m, u64 psi)
{
    const std::size_t n = a.size();
    const u32 logN = log2Floor(n);
    const u64 p = m.value;

    // Undo the output reordering: X[k] = a[rev(k)].
    std::vector<u64> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[bitReverse(i, logN)] = a[i];

    // Inverse cyclic FFT: run the forward FFT with w^{-1}, scale 1/n.
    u64 psiInv = naivePow(psi, 2 * n - 1, p); // psi^{-1}: psi^(2n)=1
    u64 wInv = mulModNaive(psiInv, psiInv, p);
    cyclicFft(x, m, wInv);
    u64 nInv = naivePow(n, p - 2, p);
    u64 tw = 1;
    for (std::size_t j = 0; j < n; ++j) {
        a[j] = mulModNaive(mulModNaive(x[j], nInv, p), tw, p);
        tw = mulModNaive(tw, psiInv, p);
    }
}

} // namespace fideslib::ref
