/**
 * @file
 * Independent reference NTT used as the integration-test oracle and
 * the CPU-baseline backend (the OpenFHE role in the paper's
 * evaluation).
 *
 * Deliberately different implementation strategy from core/ntt.cpp:
 * an explicit bit-reversal pass plus an iterative cyclic FFT over a
 * psi-scaled ("twisted") coefficient vector, with naive `%` modular
 * arithmetic throughout. Same mathematical function, independently
 * derived -- agreement between the two is a strong correctness
 * signal.
 */

#pragma once

#include <vector>

#include "core/modarith.hpp"

namespace fideslib::ref
{

/** Reference forward negacyclic NTT (natural in, bit-reversed out). */
void refNttForward(std::vector<u64> &a, const Modulus &m, u64 psi);

/** Reference inverse negacyclic NTT (bit-reversed in, natural out). */
void refNttInverse(std::vector<u64> &a, const Modulus &m, u64 psi);

} // namespace fideslib::ref
